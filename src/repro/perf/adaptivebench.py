"""Adaptive-planning benchmark (``BENCH_adaptive.json``).

Two workloads, one per side of the bet the dynamic variable-selection
policies make (:data:`repro.core.ltj.POLICIES`):

- **skewed** — :func:`repro.graph.generators.skewed_graph` instances
  whose two-wing hubs make *every* static elimination order
  pathological on half the hubs; the gate demands ``adaptive`` beats
  ``static`` by >= 2x here (it wins by skipping the wide wing per
  binding, not by a different asymptotic);
- **uniform** — the WGPB-style Table-1 mix over ``wikidata_like``,
  where the static §4.3 order is already near-optimal; the gate demands
  ``adaptive`` regresses <= 10% (the re-rank arithmetic is O(1) per
  search-tree node, but it is *Python* arithmetic on the hot path).

Identity is asserted everywhere timing is measured: every policy must
return the same solution multiset, each policy must enumerate
deterministically, and the cached / parallel / sharded serving paths
must stay byte-identical to the serial evaluation under every policy.
The per-query decision-log counters (``reranks``,
``rerank_divergence``, ``rerank_fallbacks``, ``estimate_misses``) ride
along so re-rank overhead and order divergence are observable in the
artifact.

Consumed by ``python -m repro bench --adaptive`` and the
``benchmarks/bench_adaptive.py`` pytest gate (markers
``perf``/``adaptive``).  Same schema philosophy as
:mod:`repro.perf.kernelbench`: the emitter lives in the library so
every ``BENCH_adaptive.json`` in the repo history is comparable.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.bench.wgpb import generate_wgpb_queries
from repro.core import RingIndex
from repro.core.ltj import POLICIES
from repro.graph.generators import skewed_graph, wikidata_like
from repro.graph.model import BasicGraphPattern, TriplePattern, Var
from repro.perf.hostmeta import host_metadata

#: Bump when the JSON layout changes, so trajectory tooling can dispatch.
SCHEMA_VERSION = 1

#: The two-wing join of the generator's docstring: after binding ``?s``
#: one of the ``?a``/``?b`` wings has collapsed to width 1, but which
#: one alternates per hub — no static order can be right for both.
TWO_WING_QUERY = BasicGraphPattern(
    [
        TriplePattern(Var("s"), 0, Var("a")),
        TriplePattern(Var("s"), 1, Var("b")),
        TriplePattern(Var("a"), 2, Var("b")),
    ]
)


def _rows_key(result) -> list:
    """An order-preserving, comparable encoding of a query result."""
    return [tuple(sorted((v.name, c) for v, c in mu.items())) for mu in result]


def _timed_eval(index, bgp, limit, timeout, repeats: int) -> tuple[float, list, dict]:
    """Best-of-``repeats`` evaluation; returns (seconds, rows_key, stats)."""
    best = float("inf")
    key: list = []
    stats: dict = {}
    for _ in range(repeats):
        run_stats: dict = {}
        start = time.perf_counter()
        result = index.evaluate(
            bgp, limit=limit, timeout=timeout, stats=run_stats
        )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, key, stats = elapsed, _rows_key(result), run_stats
    return best, key, stats


def _decision_counters(stats: dict) -> dict:
    """The policy decision-log counters of one evaluation's stats."""
    return {
        k: stats.get(k, 0)
        for k in (
            "reranks",
            "rerank_divergence",
            "rerank_fallbacks",
            "estimate_misses",
        )
    }


def bench_skewed(
    n_hubs: int = 64,
    fan: int = 32,
    instances: int = 3,
    noise: int = 500,
    timeout: float = 60.0,
    repeats: int = 2,
    seed: int = 0,
) -> dict:
    """Every policy against the two-wing pathology, ``instances`` graphs.

    No ``limit``: the query must be enumerated exhaustively (each hub
    contributes an answer, so early cutoff would hide exactly the
    branches the static order wastes time on).
    """
    runs = []
    for i in range(instances):
        graph = skewed_graph(
            n_hubs=n_hubs, fan=fan, noise=noise, seed=seed + i
        )
        per_policy: dict[str, dict] = {}
        reference: Optional[list] = None
        for policy in POLICIES:
            index = RingIndex(graph, policy=policy)
            seconds, key, stats = _timed_eval(
                index, TWO_WING_QUERY, None, timeout, repeats
            )
            # Determinism: a second pass must stream identical bytes.
            _s2, key2, _st2 = _timed_eval(
                index, TWO_WING_QUERY, None, timeout, 1
            )
            if reference is None:
                reference = sorted(key)
            per_policy[policy] = {
                "seconds": seconds,
                "rows": len(key),
                "deterministic": key == key2,
                "same_multiset": sorted(key) == reference,
                "counters": _decision_counters(stats),
                "stat_binds": stats.get("binds", 0),
                "stat_leaps": stats.get("leaps", 0),
            }
        static_s = per_policy["static"]["seconds"]
        adaptive_s = per_policy["adaptive"]["seconds"]
        runs.append(
            {
                "graph_triples": graph.n_triples,
                "seed": seed + i,
                "policies": per_policy,
                "speedup_adaptive": (
                    static_s / adaptive_s if adaptive_s > 0 else float("inf")
                ),
            }
        )
    speedups = [r["speedup_adaptive"] for r in runs]
    return {
        "n_hubs": n_hubs,
        "fan": fan,
        "instances": instances,
        "query": "?s p0 ?a . ?s p1 ?b . ?a p2 ?b",
        "runs": runs,
        "speedup_adaptive_min": min(speedups),
        "speedup_adaptive_geomean": float(np.exp(np.mean(np.log(speedups)))),
        "all_identical": all(
            p["deterministic"] and p["same_multiset"]
            for r in runs
            for p in r["policies"].values()
        ),
    }


def bench_uniform(
    n: int = 1500,
    queries_per_shape: int = 1,
    limit: int = 1000,
    timeout: float = 30.0,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Static vs adaptive on the WGPB-style Table-1 mix (no skew).

    The gate is the *regression* ratio ``adaptive / static``: re-ranking
    buys nothing here, so all that shows is its per-node overhead.  Both
    policies are timed back-to-back per query (best of ``repeats``), so
    host-load drift during the run cancels out of the ratio.
    """
    graph = wikidata_like(n, seed=seed)
    by_shape = generate_wgpb_queries(
        graph, queries_per_shape=queries_per_shape, seed=seed
    )
    queries = [bgp for instances in by_shape.values() for bgp in instances]

    indexes = {
        policy: RingIndex(graph, policy=policy)
        for policy in ("static", "adaptive")
    }
    totals = {"static": 0.0, "adaptive": 0.0}
    keys: dict[str, list] = {"static": [], "adaptive": []}
    counters = {"reranks": 0, "rerank_divergence": 0, "rerank_fallbacks": 0,
                "estimate_misses": 0}
    for bgp in queries:
        for policy, index in indexes.items():
            seconds, key, stats = _timed_eval(index, bgp, limit, timeout, repeats)
            totals[policy] += seconds
            keys[policy].append(sorted(key))
            if policy == "adaptive":
                for k in counters:
                    counters[k] += stats.get(k, 0)
    return {
        "graph_triples": graph.n_triples,
        "n_queries": len(queries),
        "limit": limit,
        "static_seconds": totals["static"],
        "adaptive_seconds": totals["adaptive"],
        "regression_adaptive": (
            totals["adaptive"] / totals["static"]
            if totals["static"] > 0
            else float("inf")
        ),
        "same_multisets": keys["static"] == keys["adaptive"],
        "adaptive_counters": counters,
    }


def bench_serving_identity(
    n_hubs: int = 32,
    fan: int = 16,
    timeout: float = 60.0,
    seed: int = 0,
    policies: Sequence[str] = POLICIES,
) -> dict:
    """Byte-identity of the cached, parallel and sharded paths per policy.

    For each policy: a cached serve must equal a fresh evaluation byte
    for byte, and the parallel driver's merged slices must equal the
    serial enumeration byte for byte.  The shard coordinator's canonical
    sort goes further — its rows must be identical *across* policies.
    """
    from repro.cache import CachedQuerySystem
    from repro.parallel.system import ParallelRingIndex
    from repro.serving.coordinator import ShardCoordinator
    from repro.serving.sharding import ShardedRingIndex

    graph = skewed_graph(n_hubs=n_hubs, fan=fan, noise=200, seed=seed)
    bgp = TWO_WING_QUERY
    out: dict[str, dict] = {}
    shard_rows: list = []
    for policy in policies:
        fresh = _rows_key(
            RingIndex(graph, policy=policy).evaluate(bgp, timeout=timeout)
        )
        cached = CachedQuerySystem(RingIndex(graph, policy=policy))
        cold = cached.evaluate(bgp, timeout=timeout)
        warm = cached.evaluate(bgp, timeout=timeout)
        with ParallelRingIndex(graph, workers=2, policy=policy) as par:
            par_rows = _rows_key(par.evaluate(bgp, timeout=timeout))
        with ShardedRingIndex.from_graph(graph, 2) as shards:
            coord = ShardCoordinator(shards, policy=policy)
            rows = _rows_key(coord.evaluate(bgp, timeout=timeout))
            shard_rows.append(rows)
        out[policy] = {
            "cached_identical": (
                _rows_key(cold) == fresh and _rows_key(warm) == fresh
            ),
            "warm_was_cached": bool(warm.cached),
            "parallel_identical": par_rows == fresh,
            "sharded_same_multiset": sorted(rows) == sorted(fresh),
        }
    return {
        "per_policy": out,
        "sharded_identical_across_policies": all(
            rows == shard_rows[0] for rows in shard_rows
        ),
        "all_identical": all(
            p["cached_identical"] and p["parallel_identical"]
            and p["sharded_same_multiset"]
            for p in out.values()
        ),
    }


def full_report(quick: bool = False, seed: int = 0) -> dict:
    """The complete ``BENCH_adaptive.json`` payload."""
    if quick:
        skew_kwargs = {"n_hubs": 48, "fan": 24, "instances": 2, "noise": 300}
        uniform_kwargs = {"n": 1200, "queries_per_shape": 1}
        identity_kwargs = {"n_hubs": 24, "fan": 12}
    else:
        skew_kwargs = {"n_hubs": 64, "fan": 32, "instances": 3, "noise": 500}
        uniform_kwargs = {"n": 2500, "queries_per_shape": 2}
        identity_kwargs = {"n_hubs": 32, "fan": 16}
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "host": host_metadata(),
        "cpus": os.cpu_count(),
        "config": {
            "quick": quick,
            "seed": seed,
            "skewed": skew_kwargs,
            "uniform": uniform_kwargs,
            "identity": identity_kwargs,
        },
        "skewed": bench_skewed(seed=seed, **skew_kwargs),
        "uniform": bench_uniform(seed=seed, **uniform_kwargs),
        "serving_identity": bench_serving_identity(seed=seed, **identity_kwargs),
    }


def write_report(report: dict, path: str) -> None:
    """Write the payload as indented JSON (newline-terminated)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`full_report` payload."""
    skew = report["skewed"]
    uni = report["uniform"]
    ident = report["serving_identity"]
    lines = [
        f"Adaptive planning — skewed two-wing workload "
        f"({skew['n_hubs']} hubs, fan {skew['fan']}, "
        f"{skew['instances']} instance(s)):",
    ]
    for run in skew["runs"]:
        pol = run["policies"]
        lines.append(
            f"  seed {run['seed']}: "
            + "  ".join(
                f"{name} {1000 * pol[name]['seconds']:.1f}ms"
                for name in POLICIES
            )
            + f"  -> adaptive {run['speedup_adaptive']:.2f}x"
        )
        counters = pol["adaptive"]["counters"]
        lines.append(
            f"    adaptive decisions: {counters['reranks']} reranks, "
            f"{counters['rerank_divergence']} diverged, "
            f"{counters['rerank_fallbacks']} fallbacks, "
            f"{counters['estimate_misses']} estimate misses"
        )
    lines += [
        f"  speedup: geomean {skew['speedup_adaptive_geomean']:.2f}x, "
        f"min {skew['speedup_adaptive_min']:.2f}x "
        f"({'identical' if skew['all_identical'] else 'MISMATCH'})",
        f"Uniform WGPB mix ({uni['graph_triples']} triples, "
        f"{uni['n_queries']} queries, limit {uni['limit']}):",
        f"  static {1000 * uni['static_seconds']:.1f}ms, "
        f"adaptive {1000 * uni['adaptive_seconds']:.1f}ms "
        f"-> regression {uni['regression_adaptive']:.3f}x "
        f"({'same multisets' if uni['same_multisets'] else 'MISMATCH'})",
        f"Serving identity (cached/parallel/sharded per policy): "
        f"{'all identical' if ident['all_identical'] else 'MISMATCH'}; "
        f"sharded rows "
        + (
            "identical across policies"
            if ident["sharded_identical_across_policies"]
            else "DIFFER across policies"
        ),
    ]
    return "\n".join(lines)
