"""Scalar-vs-batch microbenchmarks for the succinct kernel layer.

One function per kernel family times the *same* logical workload twice —
a Python loop over the scalar primitive, then one batch-kernel call —
and reports both throughputs plus the speedup.  ``full_report`` bundles
the kernel rows with an end-to-end LTJ comparison (the Table-1 quick
workload evaluated with ``use_batch`` on and off) into one
JSON-serialisable dict, the payload of ``BENCH_kernels.json``:

- ``python -m repro bench`` — interactive table + optional JSON;
- ``benchmarks/bench_kernels.py`` — the pytest (marker ``perf``) gate
  asserting the batch kernels actually beat the scalar loops;
- ``scripts/perf_smoke.py`` — CI quick mode, fails on crash.

Keeping the emitter in the library (rather than in the scripts) gives
every future PR the same schema, so ``BENCH_kernels.json`` files form a
comparable perf trajectory over time.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Optional

import numpy as np

from repro.bench.runner import run_benchmark, summarize
from repro.perf.hostmeta import host_metadata
from repro.bench.wgpb import generate_wgpb_queries
from repro.core import RingIndex
from repro.graph.generators import wikidata_like
from repro.sequences.wavelet_matrix import WaveletMatrix

#: Bump when the JSON layout changes, so trajectory tooling can dispatch.
SCHEMA_VERSION = 1


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall-clock of ``repeats`` runs (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _row(name: str, ops: int, scalar_s: float, batch_s: float) -> dict:
    return {
        "kernel": name,
        "ops": ops,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "speedup": scalar_s / batch_s if batch_s > 0 else float("inf"),
        "batch_mops_per_s": ops / batch_s / 1e6 if batch_s > 0 else 0.0,
    }


def bench_kernels(
    n: int = 1 << 18,
    batch: int = 1 << 14,
    sigma: int = 1024,
    seed: int = 0,
    repeats: int = 3,
) -> list[dict]:
    """Time every batch kernel against its scalar loop.

    ``n`` is the structure size, ``batch`` the number of queries per
    measured call.  Returns one row dict per kernel (see :func:`_row`).
    """
    from repro.bits.bitvector import BitVector

    rng = np.random.default_rng(seed)
    bv = BitVector.from_bool_array(rng.random(n) < 0.5)
    positions = rng.integers(0, n + 1, size=batch)
    ks = rng.integers(1, bv.ones + 1, size=batch)
    in_range = rng.integers(0, n, size=batch)

    seq = rng.integers(0, sigma, size=n)
    wm = WaveletMatrix(seq, sigma)
    wm_pos = rng.integers(0, n + 1, size=batch)
    wm_idx = rng.integers(0, n, size=batch)
    symbol = int(seq[0])

    rows = [
        _row(
            "bits.rank1_many",
            batch,
            _best_of(lambda: [bv.rank1(int(i)) for i in positions], repeats),
            _best_of(lambda: bv.rank1_many(positions), repeats),
        ),
        _row(
            "bits.select1_many",
            batch,
            _best_of(lambda: [bv.select1(int(k)) for k in ks], repeats),
            _best_of(lambda: bv.select1_many(ks), repeats),
        ),
        _row(
            "bits.access_many",
            batch,
            _best_of(lambda: [bv[int(i)] for i in in_range], repeats),
            _best_of(lambda: bv.access_many(in_range), repeats),
        ),
        _row(
            "wavelet.rank_many",
            batch,
            _best_of(
                lambda: [wm.rank(symbol, int(i)) for i in wm_pos], repeats
            ),
            _best_of(lambda: wm.rank_many(symbol, wm_pos), repeats),
        ),
        _row(
            "wavelet.extract_at",
            batch,
            _best_of(lambda: [wm[int(i)] for i in wm_idx], repeats),
            _best_of(lambda: wm.extract_at(wm_idx), repeats),
        ),
    ]
    return rows


def bench_ltj(
    n: int = 4000,
    queries_per_shape: int = 2,
    limit: int = 1000,
    timeout: float = 10.0,
    seed: int = 0,
) -> dict:
    """End-to-end LTJ on the Table-1 quick workload, batch vs scalar.

    Builds one graph, evaluates the WGPB-style query set with the
    batch-leap path on and off (``use_batch``), and reports both mean
    query times — the end-to-end counterpart of the kernel rows.
    """
    graph = wikidata_like(n, seed=seed)
    queries = generate_wgpb_queries(
        graph, queries_per_shape=queries_per_shape, seed=seed
    )
    out: dict[str, dict] = {}
    for label, use_batch in (("batch", True), ("scalar", False)):
        system = RingIndex(graph, use_batch=use_batch)
        result = run_benchmark([system], queries, limit=limit, timeout=timeout)
        stats = summarize(result.timings)
        out[label] = {
            "n_queries": stats.get("n", 0),
            "mean_seconds": stats.get("mean", 0.0),
            "total_seconds": sum(t.seconds for t in result.timings),
            "timeouts": stats.get("timeouts", 0),
            "results": stats.get("results", 0),
        }
    batch_t = out["batch"]["total_seconds"]
    scalar_t = out["scalar"]["total_seconds"]
    return {
        "graph_triples": graph.n_triples,
        "queries_per_shape": queries_per_shape,
        "limit": limit,
        **out,
        "speedup": scalar_t / batch_t if batch_t > 0 else float("inf"),
    }


def full_report(
    quick: bool = False,
    seed: int = 0,
    kernel_n: Optional[int] = None,
    kernel_batch: Optional[int] = None,
    ltj_n: Optional[int] = None,
    ltj_queries: Optional[int] = None,
) -> dict:
    """The complete ``BENCH_kernels.json`` payload."""
    if quick:
        kernel_n = kernel_n or (1 << 15)
        kernel_batch = kernel_batch or (1 << 12)
        ltj_n = ltj_n or 1500
        ltj_queries = ltj_queries or 1
    else:
        kernel_n = kernel_n or (1 << 18)
        kernel_batch = kernel_batch or (1 << 14)
        ltj_n = ltj_n or 4000
        ltj_queries = ltj_queries or 2
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "host": host_metadata(),
        "config": {
            "quick": quick,
            "kernel_n": kernel_n,
            "kernel_batch": kernel_batch,
            "ltj_n": ltj_n,
            "ltj_queries_per_shape": ltj_queries,
            "seed": seed,
        },
        "kernels": bench_kernels(n=kernel_n, batch=kernel_batch, seed=seed),
        "ltj": bench_ltj(n=ltj_n, queries_per_shape=ltj_queries, seed=seed),
    }


def write_report(report: dict, path: str) -> None:
    """Write the payload as indented JSON (newline-terminated)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def format_report(report: dict) -> str:
    """Human-readable table of a :func:`full_report` payload."""
    lines = [
        "Kernel microbenchmarks "
        f"(n={report['config']['kernel_n']}, "
        f"batch={report['config']['kernel_batch']})",
        f"{'kernel':<22} {'scalar':>10} {'batch':>10} "
        f"{'speedup':>9} {'Mops/s':>8}",
    ]
    for row in report["kernels"]:
        lines.append(
            f"{row['kernel']:<22} "
            f"{1000 * row['scalar_seconds']:>8.2f}ms "
            f"{1000 * row['batch_seconds']:>8.2f}ms "
            f"{row['speedup']:>8.1f}x "
            f"{row['batch_mops_per_s']:>8.1f}"
        )
    ltj = report["ltj"]
    lines += [
        "",
        f"End-to-end LTJ (Table-1 quick workload, "
        f"{ltj['graph_triples']} triples, {ltj['batch']['n_queries']} "
        "queries):",
        f"  batch-leap on : {1000 * ltj['batch']['total_seconds']:>8.1f}ms "
        f"({ltj['batch']['results']} rows)",
        f"  batch-leap off: {1000 * ltj['scalar']['total_seconds']:>8.1f}ms "
        f"({ltj['scalar']['results']} rows)",
        f"  speedup       : {ltj['speedup']:.2f}x",
    ]
    return "\n".join(lines)
