"""Space accounting study (§5.2.1 of the paper).

Measures, on one graph:

- the "simple" (3 × 32-bit) and "packed" (``2⌈log |nodes|⌉ + ⌈log |preds|⌉``
  bits) representations the paper uses as yardsticks;
- Ring and C-Ring bytes per triple (with the rank/select overhead split
  out, cf. the paper's "57 % space overhead" remark);
- general-purpose compressors on the packed byte stream (the paper runs
  gzip/bzip2/ppmd/p7zip; offline we have zlib, bz2 and lzma from the
  standard library) and the RDF-3X-style front-coding from
  :mod:`repro.bits.codecs`;
- triple-retrieval latency from the ring alone (§5.2.1 reports 5 µs
  plain / 20 µs compressed on their hardware) and construction rate.
"""

from __future__ import annotations

import bz2
import lzma
import time
import zlib

import numpy as np

from repro.bits.codecs import encode_triple_block
from repro.core.ring import Ring
from repro.graph.dataset import Graph


def packed_bytes(graph: Graph) -> bytes:
    """The packed triple stream fed to the general-purpose compressors."""
    node_bits = max(1, (max(graph.n_nodes - 1, 0)).bit_length())
    pred_bits = max(1, (max(graph.n_predicates - 1, 0)).bit_length())
    bits_per_triple = 2 * node_bits + pred_bits
    out = bytearray()
    acc = 0
    acc_bits = 0
    for s, p, o in graph:
        value = (s << (pred_bits + node_bits)) | (p << node_bits) | o
        acc |= value << acc_bits
        acc_bits += bits_per_triple
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def graphflow_memory_lower_bound_bytes(graph: Graph) -> int:
    """Graphflow's Ω(p·v) adjacency footprint (§5.2.1).

    The paper could not index Wikidata with Graphflow even on 730 GB of
    heap: its in-memory adjacency lists allocate ``p × v`` arrays of
    32-bit integers (p = unique predicates, v = unique nodes).  This
    reproduces that analysis so Table 1 can report the bound the paper
    reports (">8,966.90" bytes per triple) instead of a measurement.
    """
    return 4 * graph.n_predicates * graph.n_nodes


def space_report(graph: Graph, retrieval_samples: int = 200) -> dict[str, float]:
    """Bytes-per-triple for every representation plus timing facts."""
    n = max(graph.n_triples, 1)
    report: dict[str, float] = {
        "simple_bpt": graph.plain_size_in_bits() / 8 / n,
        "packed_bpt": graph.packed_size_in_bits() / 8 / n,
    }

    start = time.perf_counter()
    ring = Ring(graph)
    report["ring_build_seconds"] = time.perf_counter() - start
    report["ring_triples_per_second"] = n / max(report["ring_build_seconds"], 1e-9)
    report["ring_bpt"] = ring.size_in_bits() / 8 / n

    start = time.perf_counter()
    cring16 = Ring(graph, compressed=True, block_size=15)
    report["cring_b16_build_seconds"] = time.perf_counter() - start
    report["cring_b16_bpt"] = cring16.size_in_bits() / 8 / n
    cring64 = Ring(graph, compressed=True, block_size=63)
    report["cring_b64_bpt"] = cring64.size_in_bits() / 8 / n

    report["graphflow_lower_bound_bpt"] = (
        graphflow_memory_lower_bound_bytes(graph) / n
    )

    stream = packed_bytes(graph)
    report["zlib9_bpt"] = len(zlib.compress(stream, 9)) / n
    report["bz2_bpt"] = len(bz2.compress(stream, 9)) / n
    report["lzma_bpt"] = len(lzma.compress(stream, preset=6)) / n
    front_coded = encode_triple_block([tuple(t) for t in graph.triples])
    report["frontcoding_bpt"] = len(front_coded) / n

    rng = np.random.default_rng(0)
    for name, index in (("ring", ring), ("cring_b16", cring16)):
        idxs = rng.integers(0, graph.n_triples, size=min(retrieval_samples, n))
        start = time.perf_counter()
        for i in idxs:
            index.triple(int(i))
        elapsed = time.perf_counter() - start
        report[f"{name}_retrieval_us"] = 1e6 * elapsed / max(len(idxs), 1)
    return report


def format_space_report(report: dict[str, float]) -> str:
    """Pretty text rendering of :func:`space_report`."""
    lines = [
        "Space accounting (bytes per triple) — cf. paper §5.2.1",
        "-" * 58,
        f"simple (3 x 32-bit ints)      {report['simple_bpt']:10.2f}",
        f"packed (bit-exact)            {report['packed_bpt']:10.2f}",
        f"Ring (plain bitvectors)       {report['ring_bpt']:10.2f}",
        f"C-Ring (RRR, b=16)            {report['cring_b16_bpt']:10.2f}",
        f"C-Ring (RRR, b=64)            {report['cring_b64_bpt']:10.2f}",
        f"zlib -9 on packed stream      {report['zlib9_bpt']:10.2f}",
        f"bzip2 -9 on packed stream     {report['bz2_bpt']:10.2f}",
        f"lzma on packed stream         {report['lzma_bpt']:10.2f}",
        f"front-coding (RDF-3X style)   {report['frontcoding_bpt']:10.2f}",
        f"Graphflow Ω(p·v) lower bound  {report['graphflow_lower_bound_bpt']:10.2f}",
        "-" * 58,
        f"ring construction             {report['ring_triples_per_second']:,.0f} triples/s",
        f"triple retrieval (Ring)       {report['ring_retrieval_us']:10.1f} us",
        f"triple retrieval (C-Ring b16) {report['cring_b16_retrieval_us']:10.1f} us",
    ]
    return "\n".join(lines)
