"""The Wikidata Graph Pattern Benchmark's 17 query shapes (Figure 7).

Each shape is a small directed multigraph over abstract variables; an
*instance* replaces every edge label by a concrete predicate found by a
random walk through the data graph so that the query is guaranteed
non-empty — exactly the WGPB construction ("each pattern is instantiated
with 50 queries built using random walks such that the results are
nonempty", §5.2).  All subjects/objects stay variables and every variable
occurs at most once per triple pattern, as in the benchmark.

Shape naming follows the paper's Figure 7: ``P`` paths, ``T`` out-stars,
``Ti`` in-stars, ``J`` mixed-direction stars, ``Tr`` triangles, ``S``
squares (4-cycles with varying edge orientations).  The exact edge
orientations of ``J``/``S`` shapes are reconstructed from the figure's
glyphs; EXPERIMENTS.md records this as a documented approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var

Edge = tuple[int, int]  # (source variable index, target variable index)


@dataclass(frozen=True)
class Shape:
    """An abstract query shape: directed edges over variable indexes."""

    name: str
    edges: tuple[Edge, ...]

    @property
    def n_variables(self) -> int:
        return 1 + max(max(e) for e in self.edges)

    @property
    def n_edges(self) -> int:
        return len(self.edges)


WGPB_SHAPES: tuple[Shape, ...] = (
    # Paths: x0 -> x1 -> ... (P2 has 2 edges / 3 variables).
    Shape("P2", ((0, 1), (1, 2))),
    Shape("P3", ((0, 1), (1, 2), (2, 3))),
    Shape("P4", ((0, 1), (1, 2), (2, 3), (3, 4))),
    # Out-stars: all edges leave the centre x0.
    Shape("T2", ((0, 1), (0, 2))),
    Shape("T3", ((0, 1), (0, 2), (0, 3))),
    Shape("T4", ((0, 1), (0, 2), (0, 3), (0, 4))),
    # In-stars: all edges enter the centre x0.
    Shape("Ti2", ((1, 0), (2, 0))),
    Shape("Ti3", ((1, 0), (2, 0), (3, 0))),
    Shape("Ti4", ((1, 0), (2, 0), (3, 0), (4, 0))),
    # Mixed stars (joins on the centre with both directions).
    Shape("J3", ((1, 0), (0, 2), (3, 0))),
    Shape("J4", ((1, 0), (0, 2), (3, 0), (0, 4))),
    # Triangles.
    Shape("Tr1", ((0, 1), (1, 2), (2, 0))),
    Shape("Tr2", ((0, 1), (1, 2), (0, 2))),
    # Squares: 4-cycles with varying orientations.
    Shape("S1", ((0, 1), (1, 2), (2, 3), (3, 0))),
    Shape("S2", ((0, 1), (1, 2), (2, 3), (0, 3))),
    Shape("S3", ((0, 1), (1, 2), (3, 2), (3, 0))),
    Shape("S4", ((0, 1), (2, 1), (2, 3), (0, 3))),
)

SHAPES_BY_NAME = {s.name: s for s in WGPB_SHAPES}


class _Adjacency:
    """Sorted edge tables for fast random-walk instantiation."""

    def __init__(self, graph: Graph) -> None:
        t = graph.triples
        self._by_s = t[np.argsort(t[:, 0], kind="stable")]
        self._by_o = t[np.argsort(t[:, 2], kind="stable")]
        self._n = len(t)

    def random_edge(self, rng: np.random.Generator) -> tuple[int, int, int]:
        """A uniformly random edge (walk seed)."""
        row = self._by_s[int(rng.integers(0, self._n))]
        return int(row[0]), int(row[1]), int(row[2])

    def _slice(self, table: np.ndarray, col: int, value: int) -> np.ndarray:
        lo = int(np.searchsorted(table[:, col], value, "left"))
        hi = int(np.searchsorted(table[:, col], value, "right"))
        return table[lo:hi]

    def edges_from(self, s: int) -> np.ndarray:
        """All edges leaving node ``s``."""
        return self._slice(self._by_s, 0, s)

    def edges_to(self, o: int) -> np.ndarray:
        """All edges entering node ``o``."""
        return self._slice(self._by_o, 2, o)


def instantiate_shape(
    shape: Shape,
    graph: Graph,
    rng: np.random.Generator,
    max_attempts: int = 200,
) -> BasicGraphPattern | None:
    """One random-walk instance of ``shape`` with a guaranteed witness.

    Walks the shape's edges, assigning concrete nodes to variables from
    actual graph edges; the assembled query keeps the nodes as variables
    and the walked predicates as constants, so the walked assignment
    itself is a solution.  Returns ``None`` when ``max_attempts`` random
    walks all dead-end (possible on sparse graphs).
    """
    if graph.n_triples == 0:
        return None
    adj = _Adjacency(graph)
    for _ in range(max_attempts):
        nodes: dict[int, int] = {}
        predicates: list[int] = []
        ok = True
        for src, dst in shape.edges:
            if src in nodes and dst in nodes:
                candidates = adj.edges_from(nodes[src])
                candidates = candidates[candidates[:, 2] == nodes[dst]]
            elif src in nodes:
                candidates = adj.edges_from(nodes[src])
            elif dst in nodes:
                candidates = adj.edges_to(nodes[dst])
            else:
                s, p, o = adj.random_edge(rng)
                nodes[src], nodes[dst] = s, o
                predicates.append(p)
                continue
            if len(candidates) == 0:
                ok = False
                break
            row = candidates[int(rng.integers(0, len(candidates)))]
            nodes.setdefault(src, int(row[0]))
            nodes.setdefault(dst, int(row[2]))
            predicates.append(int(row[1]))
        if not ok:
            continue
        patterns = [
            TriplePattern(Var(f"x{src}"), predicates[i], Var(f"x{dst}"))
            for i, (src, dst) in enumerate(shape.edges)
        ]
        return BasicGraphPattern(patterns)
    return None


def generate_wgpb_queries(
    graph: Graph,
    queries_per_shape: int = 10,
    seed: int = 0,
    shapes: tuple[Shape, ...] = WGPB_SHAPES,
) -> dict[str, list[BasicGraphPattern]]:
    """WGPB-style query set: ``queries_per_shape`` instances per shape."""
    rng = np.random.default_rng(seed)
    out: dict[str, list[BasicGraphPattern]] = {}
    for shape in shapes:
        instances = []
        for _ in range(queries_per_shape):
            bgp = instantiate_shape(shape, graph, rng)
            if bgp is not None:
                instances.append(bgp)
        out[shape.name] = instances
    return out
