"""Text renderers for the paper's tables and figures."""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import BenchmarkResult, summarize


def format_table1(
    systems: Sequence, result: BenchmarkResult
) -> str:
    """Table 1: bytes per triple and mean WGPB query time per system."""
    lines = [
        "Table 1 — index space and mean query time (WGPB-style)",
        "-" * 60,
        f"{'System':<14}{'Space (B/t)':>14}{'Time (ms)':>14}{'Notes':>16}",
        "-" * 60,
    ]
    by_name = {s.name: s for s in systems}
    for name in result.systems():
        stats = summarize(result.for_system(name))
        system = by_name[name]
        if stats["n"] == 0:
            time_str, note = "—", f"{stats['unsupported']} unsupported"
        else:
            time_str = f"{1000 * stats['mean']:.1f}"
            note = (
                f"{stats['timeouts']} timeouts" if stats["timeouts"] else ""
            )
        lines.append(
            f"{name:<14}{system.bytes_per_triple():>14.2f}"
            f"{time_str:>14}{note:>16}"
        )
    return "\n".join(lines)


def format_figure8(result: BenchmarkResult) -> str:
    """Figure 8: per-shape quartiles (ms) per system, as a text matrix."""
    lines = [
        "Figure 8 — query time distributions per shape "
        "(p25 / median / p75, ms)",
        "-" * 76,
    ]
    groups = result.groups()
    for name in result.systems():
        lines.append(name)
        for group in groups:
            stats = summarize(result.for_group(name, group))
            if stats["n"] == 0:
                lines.append(f"  {group:<6} unsupported")
                continue
            lines.append(
                f"  {group:<6}"
                f"{1000 * stats['p25']:>10.2f}"
                f"{1000 * stats['median']:>10.2f}"
                f"{1000 * stats['p75']:>10.2f}"
                f"   (min {1000 * stats['min']:.2f}, max {1000 * stats['max']:.2f})"
            )
    return "\n".join(lines)


def format_table2(systems: Sequence, result: BenchmarkResult) -> str:
    """Table 2: space + min/avg/median times + timeout counts."""
    lines = [
        "Table 2 — real-world-style workload at full scale",
        "-" * 76,
        f"{'System':<14}{'Space (B/t)':>12}{'Min (s)':>10}{'Avg (s)':>10}"
        f"{'Median (s)':>12}{'Timeouts':>10}",
        "-" * 76,
    ]
    by_name = {s.name: s for s in systems}
    for name in result.systems():
        stats = summarize(result.for_system(name))
        system = by_name[name]
        if stats["n"] == 0:
            lines.append(f"{name:<14}{system.bytes_per_triple():>12.2f}"
                         f"{'(unsupported workload)':>42}")
            continue
        lines.append(
            f"{name:<14}{system.bytes_per_triple():>12.2f}"
            f"{stats['min']:>10.5f}{stats['mean']:>10.4f}"
            f"{stats['median']:>12.5f}{stats['timeouts']:>10d}"
        )
    return "\n".join(lines)


def format_table3(rows: list[dict]) -> str:
    """Table 3: orders per class and arity; '[lo,hi]' marks bounds."""
    header = f"{'d':>3}" + "".join(
        f"{cls.upper():>10}" for cls in ("w", "tw", "cw", "ctw", "cbw", "cbtw")
    )
    lines = [
        "Table 3 — number of index orders required per class",
        "-" * len(header),
        header,
        "-" * len(header),
    ]
    for row in rows:
        cells = [f"{row['d']:>3}"]
        for cls in ("w", "tw", "cw", "ctw", "cbw", "cbtw"):
            lo, hi = row[cls]
            cells.append(f"{lo:>10}" if lo == hi else f"{f'[{lo},{hi}]':>10}")
        lines.append("".join(cells))
    return "\n".join(lines)
