"""Timing runner: evaluate query sets over systems, collect statistics.

Follows the paper's protocol (§5.1): every query runs with a result
limit (1000 in the paper) and a timeout; timeouts are recorded rather
than fatal; systems that cannot express a query (Qdag on Table 2-style
patterns) are recorded as *unsupported*, mirroring how the paper excludes
them from the affected benchmark.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.qdag import UnsupportedQueryError
from repro.core.interface import QueryTimeout
from repro.graph.model import BasicGraphPattern


@dataclass
class QueryTiming:
    """Outcome of one (system, query) execution."""

    system: str
    group: str
    query_index: int
    seconds: float
    n_results: int
    timed_out: bool = False
    unsupported: bool = False


@dataclass
class BenchmarkResult:
    """All timings of one benchmark run."""

    timings: list[QueryTiming] = field(default_factory=list)

    def for_system(self, name: str) -> list[QueryTiming]:
        """Timings of one system across all groups."""
        return [t for t in self.timings if t.system == name]

    def for_group(self, name: str, group: str) -> list[QueryTiming]:
        """Timings of one system within one query group (shape)."""
        return [
            t for t in self.timings if t.system == name and t.group == group
        ]

    def systems(self) -> list[str]:
        """System names in first-seen order."""
        seen: list[str] = []
        for t in self.timings:
            if t.system not in seen:
                seen.append(t.system)
        return seen

    def groups(self) -> list[str]:
        """Query-group names in first-seen order."""
        seen: list[str] = []
        for t in self.timings:
            if t.group not in seen:
                seen.append(t.group)
        return seen


def run_queries(
    system,
    queries: Sequence[BasicGraphPattern],
    group: str = "",
    limit: Optional[int] = 1000,
    timeout: Optional[float] = None,
) -> list[QueryTiming]:
    """Evaluate ``queries`` on one system, timing each."""
    out = []
    for i, bgp in enumerate(queries):
        start = time.perf_counter()
        try:
            results = system.evaluate(bgp, limit=limit, timeout=timeout)
            elapsed = time.perf_counter() - start
            out.append(
                QueryTiming(system.name, group, i, elapsed, len(results))
            )
        except QueryTimeout:
            elapsed = time.perf_counter() - start
            out.append(
                QueryTiming(system.name, group, i, elapsed, 0, timed_out=True)
            )
        except UnsupportedQueryError:
            out.append(
                QueryTiming(system.name, group, i, 0.0, 0, unsupported=True)
            )
    return out


def run_benchmark(
    systems: Sequence,
    query_groups: dict[str, Sequence[BasicGraphPattern]],
    limit: Optional[int] = 1000,
    timeout: Optional[float] = None,
) -> BenchmarkResult:
    """Run every system over every query group."""
    result = BenchmarkResult()
    for system in systems:
        for group, queries in query_groups.items():
            result.timings.extend(
                run_queries(system, queries, group, limit, timeout)
            )
    return result


def summarize(timings: Sequence[QueryTiming]) -> dict[str, float]:
    """min / mean / median / quartiles / max / timeout & support counts.

    Timed-out queries enter the time statistics at their elapsed time
    (a lower bound), as in the paper's Table 2 protocol; unsupported
    queries are excluded from time statistics but counted.
    """
    supported = [t for t in timings if not t.unsupported]
    times = [t.seconds for t in supported]
    if not times:
        return {
            "n": 0,
            "timeouts": 0,
            "unsupported": len(timings),
        }
    times_sorted = sorted(times)
    return {
        "n": len(times),
        "min": times_sorted[0],
        "max": times_sorted[-1],
        "mean": statistics.fmean(times),
        "median": statistics.median(times_sorted),
        "p25": _percentile(times_sorted, 0.25),
        "p75": _percentile(times_sorted, 0.75),
        "timeouts": sum(1 for t in supported if t.timed_out),
        "unsupported": sum(1 for t in timings if t.unsupported),
        "results": sum(t.n_results for t in supported),
    }


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac
