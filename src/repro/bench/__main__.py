"""Command-line entry points regenerating the paper's tables and figures.

Examples::

    python -m repro.bench table1 --n 20000 --queries 10
    python -m repro.bench figure8 --n 10000 --queries 5
    python -m repro.bench table2 --n 50000 --queries 60 --timeout 5
    python -m repro.bench table3 --dmax 6
    python -m repro.bench space --n 20000
    python -m repro.bench shapes

Scale knobs default to laptop-friendly values; raise ``--n`` and
``--queries`` to approach the paper's proportions (wall-clock grows
accordingly — this is pure Python).
"""

from __future__ import annotations

import argparse

from repro.baselines import (
    BlazegraphIndex,
    CyclicUnidirectionalIndex,
    EmptyHeadedIndex,
    FlatTrieIndex,
    JenaIndex,
    JenaLTJIndex,
    QdagIndex,
    RDF3XIndex,
    VirtuosoIndex,
)
from repro.bench.report import (
    format_figure8,
    format_table1,
    format_table2,
    format_table3,
)
from repro.bench.runner import run_benchmark
from repro.bench.space import format_space_report, space_report
from repro.bench.wgpb import WGPB_SHAPES, generate_wgpb_queries
from repro.bench.workloads import generate_realworld_queries
from repro.core import CompressedRingIndex, RingIndex
from repro.graph.generators import wikidata_like

TABLE1_SYSTEMS = {
    "Ring": RingIndex,
    "C-Ring": CompressedRingIndex,
    "EmptyHeaded": EmptyHeadedIndex,
    "FlatTrie": FlatTrieIndex,
    "Qdag": QdagIndex,
    "Jena": JenaIndex,
    "Jena-LTJ": JenaLTJIndex,
    "RDF-3X": RDF3XIndex,
    "Virtuoso": VirtuosoIndex,
    "Blazegraph": BlazegraphIndex,
    "Cyclic-2R": CyclicUnidirectionalIndex,
}

TABLE2_SYSTEMS = {
    # Per §5.3: EmptyHeaded (space), Qdag and Graphflow (constants) are
    # excluded at full scale; the remaining systems compete.
    "Ring": RingIndex,
    "Jena": JenaIndex,
    "Jena-LTJ": JenaLTJIndex,
    "RDF-3X": RDF3XIndex,
    "Virtuoso": VirtuosoIndex,
    "Blazegraph": BlazegraphIndex,
}


def _build(graph, names: dict) -> list:
    systems = []
    for name, cls in names.items():
        print(f"building {name} …", flush=True)
        systems.append(cls(graph))
    return systems


def cmd_table1(args) -> None:
    graph = wikidata_like(args.n, seed=args.seed)
    queries = generate_wgpb_queries(graph, args.queries, seed=args.seed)
    total = sum(len(v) for v in queries.values())
    print(f"graph: {graph!r}; {total} WGPB-style queries\n")
    systems = _build(graph, TABLE1_SYSTEMS)
    result = run_benchmark(systems, queries, limit=args.limit,
                           timeout=args.timeout)
    print()
    print(format_table1(systems, result))


def cmd_figure8(args) -> None:
    graph = wikidata_like(args.n, seed=args.seed)
    queries = generate_wgpb_queries(graph, args.queries, seed=args.seed)
    systems = _build(graph, TABLE1_SYSTEMS)
    result = run_benchmark(systems, queries, limit=args.limit,
                           timeout=args.timeout)
    print()
    print(format_figure8(result))


def cmd_table2(args) -> None:
    graph = wikidata_like(args.n, seed=args.seed)
    queries = generate_realworld_queries(graph, args.queries, seed=args.seed)
    print(f"graph: {graph!r}; {len(queries)} log-style queries\n")
    systems = _build(graph, TABLE2_SYSTEMS)
    result = run_benchmark(
        systems, {"log": queries}, limit=args.limit, timeout=args.timeout
    )
    print()
    print(format_table2(systems, result))


def cmd_table3(args) -> None:
    from repro.relational.orders import table3

    rows = table3(
        d_values=tuple(range(2, args.dmax + 1)), node_budget=args.budget
    )
    print(format_table3(rows))


def cmd_space(args) -> None:
    graph = wikidata_like(args.n, seed=args.seed)
    print(f"graph: {graph!r}\n")
    print(format_space_report(space_report(graph)))


def cmd_shapes(_args) -> None:
    print("Figure 7 — WGPB query shapes (edges over variables x0, x1, …)")
    for shape in WGPB_SHAPES:
        edges = ", ".join(f"x{a}->x{b}" for a, b in shape.edges)
        print(f"  {shape.name:<4} vars={shape.n_variables}  {edges}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, n_default):
        p.add_argument("--n", type=int, default=n_default,
                       help="graph size in triples")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--limit", type=int, default=1000,
                       help="result limit per query (paper: 1000)")
        p.add_argument("--timeout", type=float, default=10.0,
                       help="per-query timeout in seconds")

    p1 = sub.add_parser("table1", help="space + mean WGPB time per system")
    common(p1, 20_000)
    p1.add_argument("--queries", type=int, default=5,
                    help="instances per shape")
    p1.set_defaults(func=cmd_table1)

    p8 = sub.add_parser("figure8", help="per-shape time distributions")
    common(p8, 10_000)
    p8.add_argument("--queries", type=int, default=5)
    p8.set_defaults(func=cmd_figure8)

    p2 = sub.add_parser("table2", help="real-world-style workload")
    common(p2, 50_000)
    p2.add_argument("--queries", type=int, default=50)
    p2.set_defaults(func=cmd_table2)

    p3 = sub.add_parser("table3", help="index orders per class")
    p3.add_argument("--dmax", type=int, default=6)
    p3.add_argument("--budget", type=int, default=2_000_000,
                    help="branch-and-bound node budget")
    p3.set_defaults(func=cmd_table3)

    ps = sub.add_parser("space", help="space accounting study (§5.2.1)")
    common(ps, 20_000)
    ps.set_defaults(func=cmd_space)

    pf = sub.add_parser("shapes", help="list the 17 WGPB shapes (Figure 7)")
    pf.set_defaults(func=cmd_shapes)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
