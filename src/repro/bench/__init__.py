"""Benchmark harness: workloads, runner and report printers.

Everything needed to regenerate the paper's evaluation section
(Tables 1–3, Figures 7–8 and the §5.2.1 space study) at a Python-tractable
scale.  ``python -m repro.bench --help`` lists the entry points; the
``benchmarks/`` directory drives the same code through pytest-benchmark.
"""

from repro.bench.runner import BenchmarkResult, run_benchmark, summarize
from repro.bench.wgpb import WGPB_SHAPES, generate_wgpb_queries
from repro.bench.workloads import generate_realworld_queries

__all__ = [
    "BenchmarkResult",
    "WGPB_SHAPES",
    "generate_realworld_queries",
    "generate_wgpb_queries",
    "run_benchmark",
    "summarize",
]
