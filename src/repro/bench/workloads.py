"""Real-world-style workload generator (the Table 2 benchmark).

The paper's second benchmark takes 1 315 basic graph patterns from the
Wikidata query logs.  Those logs are not available offline, so this
module synthesises queries that match the *published statistics* of that
workload (§5.3):

- triple-pattern-type mix: ``(?, p, ?)`` 51.5 %, ``(?, p, o)`` 38.3 %,
  ``(?, ?, ?)`` 6.7 %, ``(s, ?, ?)`` 1.2 %, ``(s, p, ?)`` 1.2 %,
  ``(?, ?, o)`` 1.1 %, ``(s, ?, o)`` 0.04 %;
- query sizes: 1–22 triple patterns, mean 2.4 (we sample a clipped
  geometric distribution with that mean);
- constants in arbitrary positions and variable predicates — the mix
  that excludes Qdag/EmptyHeaded/Graphflow from Table 2.

Constants are drawn from actual graph triples reached by a walk, so most
(not all — like real logs) queries have answers.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var

#: (keep_s, keep_p, keep_o) -> probability, from §5.3 of the paper.
PATTERN_TYPE_MIX: dict[tuple[bool, bool, bool], float] = {
    (False, True, False): 0.515,  # (?, p, ?)
    (False, True, True): 0.383,  # (?, p, o)
    (False, False, False): 0.067,  # (?, ?, ?)
    (True, False, False): 0.012,  # (s, ?, ?)
    (True, True, False): 0.012,  # (s, p, ?)
    (False, False, True): 0.011,  # (?, ?, o)
    (True, False, True): 0.0004,  # (s, ?, o)
}

MEAN_PATTERNS_PER_QUERY = 2.4
MAX_PATTERNS_PER_QUERY = 22


def _sample_type(rng: np.random.Generator) -> tuple[bool, bool, bool]:
    kinds = list(PATTERN_TYPE_MIX)
    probs = np.array([PATTERN_TYPE_MIX[k] for k in kinds])
    probs = probs / probs.sum()
    return kinds[int(rng.choice(len(kinds), p=probs))]


def _sample_size(rng: np.random.Generator) -> int:
    # Geometric with mean 2.4 => success prob 1/2.4, clipped to [1, 22].
    size = int(rng.geometric(1.0 / MEAN_PATTERNS_PER_QUERY))
    return min(max(size, 1), MAX_PATTERNS_PER_QUERY)


def generate_realworld_queries(
    graph: Graph,
    n_queries: int = 100,
    seed: int = 0,
) -> list[BasicGraphPattern]:
    """Synthesise a Table 2-style workload over ``graph``."""
    if graph.n_triples == 0:
        raise ValueError("cannot build a workload over an empty graph")
    rng = np.random.default_rng(seed)
    t = graph.triples
    queries = []
    for q in range(n_queries):
        size = _sample_size(rng)
        patterns = []
        # Walk: each pattern is seeded from a real triple; consecutive
        # patterns share a variable to keep the query connected.
        prev_var: Var | None = None
        fresh = iter(f"v{q}_{i}" for i in range(3 * size + 3))
        for i in range(size):
            s_id, p_id, o_id = (int(v) for v in t[int(rng.integers(0, len(t)))])
            keep_s, keep_p, keep_o = _sample_type(rng)
            s_term = s_id if keep_s else Var(next(fresh))
            p_term = p_id if keep_p else Var(next(fresh))
            o_term = o_id if keep_o else Var(next(fresh))
            if prev_var is not None and not keep_s:
                s_term = prev_var
            if isinstance(o_term, Var):
                prev_var = o_term
            elif isinstance(s_term, Var):
                prev_var = s_term
            patterns.append(TriplePattern(s_term, p_term, o_term))
        queries.append(BasicGraphPattern(patterns))
    return queries


def workload_type_histogram(
    queries: list[BasicGraphPattern],
) -> dict[str, float]:
    """Fraction of each triple-pattern kind in a workload (sanity checks
    against the published distribution)."""
    counts: dict[str, int] = {}
    total = 0
    for bgp in queries:
        for pattern in bgp:
            counts[pattern.kind()] = counts.get(pattern.kind(), 0) + 1
            total += 1
    return {k: v / total for k, v in sorted(counts.items())}
