"""BGP canonicalisation: cache keys invariant under variable renaming.

Two basic graph patterns that differ only by a bijective renaming of
their variables and/or a permutation of their triple patterns denote the
same conjunctive query (§2.1.2), so a result cache keyed on the raw
query text would miss almost every real-world repeat: SPARQL workloads
are dominated by machine-generated pattern *templates* whose variable
names vary per request.  :func:`canonicalize` maps a BGP to a canonical
form — a sorted tuple of patterns with variables replaced by dense
canonical ids — such that

- **soundness**: equal canonical forms imply the queries are isomorphic
  (the form reconstructs the query up to renaming, so a collision
  between non-isomorphic queries is impossible);
- **completeness** (up to a work cap): isomorphic queries produce equal
  canonical forms, so renamed/permuted repeats share one cache entry.

The algorithm is the standard colour-refinement + individualization-
refinement scheme specialised to the tiny hypergraphs BGPs are:

1. each variable starts with a colour derived from its *occurrence
   structure* (the multiset of ``(pattern descriptor, positions)`` pairs
   it participates in, constants included);
2. colours are refined until stable: a variable's new colour folds in
   the colours (and positions) of its co-occurring variables;
3. remaining colour ties are broken by individualizing each candidate
   of the first non-singleton class in turn, recursing, and keeping the
   lexicographically least certificate.  The branching is capped by a
   work budget; real BGPs (≤ ~10 patterns) resolve in a handful of
   refinements, and on budget exhaustion the tie is broken by variable
   *name* instead — still deterministic and sound, merely blind to
   renamings (a lost cache hit, never a wrong one).

Heterogeneous sort keys (tuples mixing ints, strings and constants) are
ordered by ``repr``: arbitrary but total and deterministic, and — the
property canonicality needs — identical for isomorphic inputs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.graph.model import BasicGraphPattern, TriplePattern, Var

#: Individualization branches explored before falling back to name order.
DEFAULT_SEARCH_BUDGET = 512

Descriptor = tuple
CanonicalKey = tuple


def pattern_descriptor(pattern: TriplePattern) -> Descriptor:
    """One pattern's structure with variables anonymised to slots.

    Variables become ``("v", first_position)`` — so ``(?a, p, ?a)`` and
    ``(?z, p, ?z)`` share a descriptor while ``(?a, p, ?b)`` does not —
    and constants stay as ``("k", value)``.  This is the
    renaming-invariant unit both the canonicalizer and the planner-stats
    cache key on.
    """
    first: dict[Var, int] = {}
    out = []
    for pos, term in enumerate(pattern.terms):
        if isinstance(term, Var):
            out.append(("v", first.setdefault(term, pos)))
        else:
            out.append(("k", term))
    return tuple(out)


def canonical_pattern(
    pattern: TriplePattern, mapping: dict[Var, int]
) -> CanonicalKey:
    """``pattern`` with variables replaced by their canonical ids."""
    return tuple(
        ("v", mapping[t]) if isinstance(t, Var) else ("k", t)
        for t in pattern.terms
    )


class CanonicalBGP:
    """The canonical form of a BGP plus the renaming that produced it.

    ``key`` is hashable and equal across isomorphic BGPs (within the
    search budget); ``mapping`` sends each original :class:`Var` to its
    dense canonical id — the id space cached result rows are stored in,
    so a renamed repeat can translate them back to *its* variables.
    ``exhausted`` records that the work cap forced the name-order
    fallback (keys remain sound but renamed repeats may not collide).
    """

    __slots__ = ("key", "mapping", "exhausted")

    def __init__(
        self, key: CanonicalKey, mapping: dict[Var, int], exhausted: bool
    ) -> None:
        self.key = key
        self.mapping = mapping
        self.exhausted = exhausted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CanonicalBGP(key={self.key!r}, mapping={self.mapping!r})"


def canonicalize(
    bgp: Union[BasicGraphPattern, list, tuple],
    budget: int = DEFAULT_SEARCH_BUDGET,
) -> CanonicalBGP:
    """Canonical form of ``bgp`` (see the module docstring)."""
    patterns = list(bgp)
    descriptors = [pattern_descriptor(p) for p in patterns]
    variables: list[Var] = []
    for p in patterns:
        for v in p.variables():
            if v not in variables:
                variables.append(v)
    if not variables:
        key = tuple(sorted(descriptors, key=repr))
        return CanonicalBGP(key, {}, False)

    colors = _dense(
        {
            v: tuple(
                sorted(
                    (
                        (d, tuple(p.variable_positions(v)))
                        for p, d in zip(patterns, descriptors)
                        if v in p.variables()
                    ),
                    key=repr,
                )
            )
            for v in variables
        }
    )
    colors = _refine(colors, patterns, descriptors)
    remaining = [int(budget)]
    mapping, exhausted = _individualize(colors, patterns, descriptors, remaining)
    key = _certificate(patterns, mapping)
    return CanonicalBGP(key, mapping, exhausted)


# -- internals ---------------------------------------------------------------


def _dense(signatures: dict[Var, object]) -> dict[Var, int]:
    """Relabel arbitrary signature values as dense ints (repr order)."""
    ranks = {
        s: i
        for i, s in enumerate(sorted(set(signatures.values()), key=repr))
    }
    return {v: ranks[s] for v, s in signatures.items()}


def _refine(
    colors: dict[Var, int],
    patterns: list[TriplePattern],
    descriptors: list[Descriptor],
) -> dict[Var, int]:
    """1-WL colour refinement to a stable partition.

    A variable's signature folds in, per pattern it occurs in: the
    pattern descriptor, its own positions, and the (colour, positions)
    multiset of its co-variables.  The old colour is part of the
    signature, so classes only ever split; we stop when the class count
    stops growing.
    """
    n_classes = len(set(colors.values()))
    while True:
        signatures: dict[Var, object] = {}
        for v in colors:
            neigh = []
            for p, d in zip(patterns, descriptors):
                p_vars = p.variables()
                if v not in p_vars:
                    continue
                others = tuple(
                    sorted(
                        (colors[u], tuple(p.variable_positions(u)))
                        for u in p_vars
                        if u != v
                    )
                )
                neigh.append((d, tuple(p.variable_positions(v)), others))
            signatures[v] = (colors[v], tuple(sorted(neigh, key=repr)))
        colors = _dense(signatures)
        new_n = len(set(colors.values()))
        if new_n == n_classes:
            return colors
        n_classes = new_n


def _individualize(
    colors: dict[Var, int],
    patterns: list[TriplePattern],
    descriptors: list[Descriptor],
    budget: list[int],
) -> tuple[dict[Var, int], bool]:
    """Break residual colour ties; returns ``(mapping, exhausted)``."""
    classes: dict[int, list[Var]] = {}
    for v, c in colors.items():
        classes.setdefault(c, []).append(v)
    multi = sorted(c for c, members in classes.items() if len(members) > 1)
    if not multi:
        return _singleton_mapping(colors), False
    if budget[0] <= 0:
        return _name_fallback(colors), True

    target = sorted(classes[multi[0]], key=lambda v: v.name)
    best_key: Optional[str] = None
    best_mapping: Optional[dict[Var, int]] = None
    exhausted = False
    fresh = max(colors.values()) + 1
    for v in target:
        if budget[0] <= 0:
            exhausted = True
            break
        budget[0] -= 1
        forced = dict(colors)
        forced[v] = fresh
        refined = _refine(forced, patterns, descriptors)
        mapping, sub_exhausted = _individualize(
            refined, patterns, descriptors, budget
        )
        exhausted = exhausted or sub_exhausted
        key = repr(_certificate(patterns, mapping))
        if best_key is None or key < best_key:
            best_key, best_mapping = key, mapping
    if best_mapping is None:  # budget died before the first branch
        return _name_fallback(colors), True
    return best_mapping, exhausted


def _singleton_mapping(colors: dict[Var, int]) -> dict[Var, int]:
    """Dense ids from an all-singleton colouring."""
    rank = {c: i for i, c in enumerate(sorted(colors.values()))}
    return {v: rank[c] for v, c in colors.items()}


def _name_fallback(colors: dict[Var, int]) -> dict[Var, int]:
    """Deterministic (but renaming-sensitive) completion by name."""
    ordered = sorted(colors.items(), key=lambda vc: (vc[1], vc[0].name))
    return {v: i for i, (v, _) in enumerate(ordered)}


def _certificate(
    patterns: list[TriplePattern], mapping: dict[Var, int]
) -> CanonicalKey:
    """Sorted tuple of canonical patterns — the hashable cache key core."""
    return tuple(
        sorted((canonical_pattern(p, mapping) for p in patterns), key=repr)
    )
