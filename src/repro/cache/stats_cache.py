"""Generation-scoped memo of the §4.3 planner statistics.

The cardinality-guided elimination order recomputes, per query, one
``count()`` and one ``distinct_estimate()`` per (pattern, variable)
pair — wavelet-matrix range counts whose answers depend only on the
pattern's *shape* (constants + variable slots) and the index contents,
not on variable names.  Repeated workloads therefore re-derive the same
numbers endlessly; :class:`PlanStatsCache` memoizes them keyed by
:func:`~repro.cache.canonical.pattern_descriptor` (renaming-invariant)
and scoped to the index generation: any insert/delete/compaction/
checkpoint bumps the generation and the memo empties itself on the next
touch — the same invalidation discipline as the result cache, so a
stale statistic can never steer a plan computed after a write.

The engine consults the memo through duck typing (set
``engine.stats_cache = PlanStatsCache(...)``, see
:meth:`repro.core.ltj.LeapfrogTrieJoin._variable_scores`), so
:mod:`repro.core` takes no import dependency on this package.

The memo also backs the *per-depth* estimates of the dynamic
variable-selection policies (``rowcount``/``distinct``/``adaptive``):
:meth:`repro.core.ltj.LeapfrogTrieJoin._policy_state` reads every
(pattern, variable) distinct root through :meth:`distinct` once per
query, and each deeper depth refines those roots with the O(1)
incrementally-maintained range widths alone — so with a memo installed
a repeated workload pays *zero* wavelet scans for adaptive re-ranking,
at any depth.

Persistence: :meth:`save` / :meth:`load` serialise the memo as JSON so
``repro plan --stats-cache`` amortises planning statistics across
processes.  The file records the generation it was captured at (for
on-disk static indexes the caller supplies a content token, e.g. the
manifest checksum); a mismatch on load simply yields an empty memo.
"""

from __future__ import annotations

import ast
import json
import threading
from typing import Callable, Optional

from repro.cache.canonical import pattern_descriptor

SCHEMA_VERSION = 1


class PlanStatsCache:
    """Memo of per-pattern ``count`` / ``distinct_estimate`` values."""

    def __init__(
        self, generation_source: Optional[Callable[[], object]] = None
    ) -> None:
        self._generation_source = generation_source or (lambda: 0)
        self._generation = self._generation_source()
        self._table: dict[tuple, int] = {}
        self._lock = threading.RLock()
        self._counts = {"hits": 0, "misses": 0, "invalidations": 0}

    # -- the engine-facing memo ----------------------------------------------

    def count(self, iterator) -> int:
        """Memoized ``iterator.count()`` for the current generation."""
        key = ("c", pattern_descriptor(iterator.pattern))
        return self._get(key, iterator.count)

    def distinct(self, iterator, var, estimator=None) -> int:
        """Memoized distinct-values estimate of ``var`` in ``iterator``.

        ``estimator`` is the iterator's bound ``distinct_estimate`` (or
        ``None``, falling back to the memoized pattern count — the same
        fallback the engine uses for estimator-less iterators).
        """
        key = (
            "d",
            pattern_descriptor(iterator.pattern),
            tuple(iterator.pattern.variable_positions(var)),
        )
        if estimator is None:
            return self._get(key, lambda: self.count(iterator))
        return self._get(key, lambda: estimator(var))

    def _get(self, key: tuple, compute: Callable[[], int]) -> int:
        with self._lock:
            self._sync_locked()
            generation = self._generation
            if key in self._table:
                self._counts["hits"] += 1
                return self._table[key]
            self._counts["misses"] += 1
            value = int(compute())
            # A write may have raced the computation (the iterator holds
            # an older snapshot); only memoize values that are still
            # current, so a later query at the new generation never
            # reads a number measured against the old one.
            if self._generation_source() == generation:
                self._table[key] = value
            return value

    def _sync_locked(self) -> None:
        generation = self._generation_source()
        if generation != self._generation:
            if self._table:
                self._counts["invalidations"] += 1
            self._table.clear()
            self._generation = generation

    # -- maintenance / introspection -----------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._table.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)

    def stats(self) -> dict:
        with self._lock:
            out = dict(self._counts)
            out["entries"] = len(self._table)
        looked = out["hits"] + out["misses"]
        out["hit_rate"] = out["hits"] / looked if looked else 0.0
        return out

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Write the memo (with its generation stamp) as JSON."""
        with self._lock:
            self._sync_locked()
            payload = {
                "schema_version": SCHEMA_VERSION,
                "generation": repr(self._generation),
                "entries": {repr(k): v for k, v in self._table.items()},
            }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")

    @classmethod
    def load(
        cls,
        path,
        generation_source: Optional[Callable[[], object]] = None,
    ) -> "PlanStatsCache":
        """Rebuild a memo from :meth:`save` output.

        Any problem — missing/corrupt file, schema drift, a generation
        stamp that no longer matches the live index — degrades to an
        empty memo; persistence is an optimisation, never a correctness
        dependency.
        """
        cache = cls(generation_source=generation_source)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict):
            return cache
        if payload.get("schema_version") != SCHEMA_VERSION:
            return cache
        if payload.get("generation") != repr(cache._generation):
            return cache
        try:
            entries = {
                ast.literal_eval(k): int(v)
                for k, v in payload.get("entries", {}).items()
            }
        except (ValueError, SyntaxError, TypeError):
            return cache
        with cache._lock:
            cache._table.update(entries)
        return cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanStatsCache(entries={len(self)}, gen={self._generation!r})"
