"""The query-serving cache wrapper.

:class:`CachedQuerySystem` wraps any index exposing the
:class:`~repro.core.system.BaseQuerySystem` API and serves repeated
basic graph patterns from a byte-budgeted LRU of complete results
(:mod:`repro.cache.result_cache`), keyed by a canonical form that is
invariant under variable renaming and triple reordering
(:mod:`repro.cache.canonical`).

Design invariants (each one is load-bearing; see INTERNALS §10):

- **byte-identity** — a cache hit streams exactly the rows, in exactly
  the order, with exactly the dict insertion order, that a fresh
  evaluation would produce.  The engine's row order depends on more
  than the BGP's isomorphism class (the §4.3 elimination order
  tie-breaks on variable *names*; the §4.2 lonely cross product nests
  in original pattern order), so the key folds in
  :meth:`~repro.core.ltj.LeapfrogTrieJoin.plan_signature` translated to
  canonical ids, and rows are stored as ``(canonical_id, value)`` pair
  tuples preserving the original dict insertion order;
- **only complete results** — truncated/partial/budget-aborted
  evaluations are never stored;
- **generation tags** — the key info captures
  :func:`generation_of` *before* planning; the entry is stored only if
  the generation is unchanged after evaluation and served only on an
  exact match, so a write between identical queries always invalidates;
- **fail-open** — any failure in the cache path (key derivation,
  lookup, translation; including injected faults on
  ``cache.lookup``/``cache.store``) degrades to a normal uncached
  evaluation, never to a wrong answer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cache.canonical import canonical_pattern, canonicalize
from repro.cache.result_cache import DEFAULT_CAPACITY_BYTES, ResultCache
from repro.cache.stats_cache import PlanStatsCache
from repro.core.system import QueryResult
from repro.graph.parser import parse_bgp
from repro.reliability.budget import ResourceBudget


def generation_of(index) -> object:
    """The index's invalidation token (``0`` for anything static).

    Duck-typed so plain :class:`~repro.core.system.RingIndex` instances
    (and any third-party index) work unchanged: indexes that mutate
    expose ``cache_generation()``; everything else is treated as frozen.
    """
    fn = getattr(index, "cache_generation", None)
    if callable(fn):
        return fn()
    return 0


class _KeyInfo:
    """One query's derived cache coordinates."""

    __slots__ = ("key", "mapping", "generation")

    def __init__(self, key, mapping, generation) -> None:
        self.key = key
        self.mapping = mapping
        self.generation = generation


class CachedQuerySystem:
    """Serve repeated BGPs from a canonical result cache.

    Wraps ``index`` transparently: every attribute not defined here
    (``insert``, ``delete``, ``explain``, ``size_in_bits``, …)
    delegates to the inner index, so the wrapper drops into any code
    path — including the query broker — that expects a query system.
    Mutations through the wrapper reach the inner index directly and
    bump its generation, invalidating affected entries on next touch.

    Parameters
    ----------
    index:
        The wrapped query system.
    capacity_bytes:
        Byte budget of the result cache (ignored when ``result_cache``
        is supplied).
    result_cache / stats_cache:
        Pre-built caches to share across wrappers (e.g. one process-wide
        result cache in front of several snapshots).
    share_planner_stats:
        When true (default) and the inner index exposes an LTJ engine,
        attach a generation-scoped :class:`PlanStatsCache` to it so the
        §4.3 planning statistics are memoized across queries too.
    """

    def __init__(
        self,
        index,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        result_cache: Optional[ResultCache] = None,
        stats_cache: Optional[PlanStatsCache] = None,
        share_planner_stats: bool = True,
    ) -> None:
        self._index = index
        self._cache = result_cache or ResultCache(capacity_bytes)
        self._degraded = 0
        # Wrapping stores (e.g. DurableDynamicRing) hold the evaluating
        # index one level down; resolve the engine through that level.
        engine = getattr(index, "_engine", None)
        if engine is None:
            engine = getattr(getattr(index, "_index", None), "_engine", None)
        self._engine = engine
        if engine is not None:
            # The policy is part of the key: dynamic policies emit rows
            # in a different (still deterministic) order, so entries are
            # only shared between evaluations that would stream
            # byte-identical answers.
            self._flags = (
                index.name,
                engine._use_lonely,
                engine._use_ordering,
                engine._use_batch,
                getattr(engine, "_policy", "static"),
            )
            self._plan_signature = engine.plan_signature
        else:
            self._flags = (getattr(index, "name", type(index).__name__),)
            # Engine-less systems (e.g. the sharded coordinator, whose
            # canonical sort makes row order plan-independent) opt into
            # caching by exposing their own signature hook.
            sig = getattr(index, "cache_plan_signature", None)
            self._plan_signature = sig if callable(sig) else None
        self._stats_cache = stats_cache
        if engine is not None and share_planner_stats:
            if self._stats_cache is None:
                self._stats_cache = PlanStatsCache(
                    generation_source=self.cache_generation
                )
            engine.stats_cache = self._stats_cache

    # -- transparent delegation ----------------------------------------------

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._index, name)

    @property
    def graph(self):
        return self._index.graph

    @property
    def name(self) -> str:
        return f"Cached({self._index.name})"

    @property
    def inner(self):
        return self._index

    @property
    def result_cache(self) -> ResultCache:
        return self._cache

    @property
    def stats_cache(self) -> Optional[PlanStatsCache]:
        return self._stats_cache

    def cache_generation(self):
        return generation_of(self._index)

    # -- key derivation -------------------------------------------------------

    def _key_info(
        self, bgp, limit, budget, project
    ) -> Optional[_KeyInfo]:
        """Derive the canonical cache coordinates of one submission.

        ``None`` means "not cacheable here" (unknown constant, empty
        pattern, no LTJ engine to report a plan signature) — the caller
        falls through to a normal evaluation.
        """
        if self._plan_signature is None:
            return None
        encoded = self._index.graph.encode_bgp(bgp)
        if encoded is None:
            return None
        # Capture the generation BEFORE planning: if a write lands
        # between planning and evaluation the stored generation check
        # (see _store) refuses the entry, so the window is safe.
        generation = generation_of(self._index)
        sig = self._plan_signature(encoded)
        if sig is None:  # some pattern is empty right now
            return None
        order, lonely_patterns = sig
        canon = canonicalize(encoded)
        mapping = canon.mapping
        order_sig = tuple(mapping[v] for v in order)
        lonely_sig = tuple(
            canonical_pattern(p, mapping) for p in lonely_patterns
        )
        if project is None:
            proj_sig = None
        else:
            # Unmapped projection variables never appear in solutions;
            # keying them by name only costs hits across renamings.
            proj_sig = tuple(
                mapping.get(v, ("x", v.name)) for v in project
            )
        caps = [limit]
        if budget is not None and budget.max_solutions is not None:
            # admit_solution() is stateful: a shared batch budget has
            # already consumed part of its allowance.
            caps.append(max(0, budget.max_solutions - budget.solutions))
        caps = [c for c in caps if c is not None]
        effective_limit = min(caps) if caps else None
        key = (
            canon.key,
            order_sig,
            lonely_sig,
            proj_sig,
            effective_limit,
            self._flags,
        )
        return _KeyInfo(key, mapping, generation)

    def _safe_key_info(self, bgp, limit, budget, project):
        try:
            return self._key_info(bgp, limit, budget, project)
        except Exception:
            self._degraded += 1
            return None

    # -- serve / store --------------------------------------------------------

    def _serve(self, info: _KeyInfo, bgp, limit, timeout,
               decode, cancellation, budget) -> Optional[QueryResult]:
        entry = self._cache.lookup(info.key, info.generation)
        if entry is None:
            return None
        inverse = {cid: v for v, cid in info.mapping.items()}
        out = QueryResult()
        out.budget = budget or ResourceBudget(
            timeout=timeout, max_solutions=limit, token=cancellation
        )
        for row in entry.rows:
            out.append({inverse[cid]: value for cid, value in row})
            if not out.budget.admit_solution():
                break
        out.cached = True
        if decode:
            graph = self._index.graph
            roles = graph.variable_roles(bgp)
            out = QueryResult(
                graph.decode_solution(s, roles) for s in out
            )._copy_flags(out)
        return out

    def _safe_serve(self, info, bgp, limit, timeout,
                    decode, cancellation, budget):
        try:
            return self._serve(
                info, bgp, limit, timeout, decode, cancellation, budget
            )
        except Exception:
            # A corrupt or untranslatable entry must not poison the key.
            self._degraded += 1
            try:
                self._cache.discard(info.key)
            except Exception:
                pass
            return None

    def _safe_store(self, info: _KeyInfo, result: QueryResult) -> None:
        try:
            if result.truncated:
                return  # incomplete results are never cached
            if generation_of(self._index) != info.generation:
                return  # a write raced the evaluation
            mapping = info.mapping
            rows = tuple(
                tuple((mapping[v], value) for v, value in row.items())
                for row in result
            )
            self._cache.store(info.key, info.generation, rows)
        except Exception:
            self._degraded += 1

    # -- public API -----------------------------------------------------------

    def evaluate(
        self,
        query,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        decode: bool = False,
        project: Optional[Sequence] = None,
        partial: bool = False,
        cancellation=None,
        budget: Optional[ResourceBudget] = None,
        **options,
    ) -> QueryResult:
        """:meth:`BaseQuerySystem.evaluate`, served from cache when a
        byte-identical complete result for an isomorphic query at the
        current generation is resident.  ``result.cached`` tells the
        caller which path answered."""
        if options:
            # var_order/stats/first_range change what the caller is
            # really asking for — measured or steered runs stay uncached.
            return self._index.evaluate(
                query, limit=limit, timeout=timeout, decode=decode,
                project=project, partial=partial,
                cancellation=cancellation, budget=budget, **options,
            )
        bgp = parse_bgp(query) if isinstance(query, str) else query
        info = self._safe_key_info(bgp, limit, budget, project)
        if info is not None:
            served = self._safe_serve(
                info, bgp, limit, timeout, decode, cancellation, budget
            )
            if served is not None:
                return served
        result = self._index.evaluate(
            bgp, limit=limit, timeout=timeout, decode=False,
            project=project, partial=partial,
            cancellation=cancellation, budget=budget,
        )
        if info is not None:
            self._safe_store(info, result)
        if decode:
            graph = self._index.graph
            roles = graph.variable_roles(bgp)
            result = QueryResult(
                graph.decode_solution(s, roles) for s in result
            )._copy_flags(result)
        return result

    def cache_probe(
        self,
        query,
        *,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
        decode: bool = False,
        project: Optional[Sequence] = None,
        partial: bool = False,
        cancellation=None,
        budget: Optional[ResourceBudget] = None,
        **options,
    ):
        """Broker fast path: ``(coalesce_key, served_result_or_None)``.

        A non-``None`` key identifies this submission's coalescing class
        (same key ⇒ same canonical query under the same caps at the
        current generation); a non-``None`` result is a finished,
        byte-identical answer that cost no evaluation.  ``(None, None)``
        means the query is not cacheable and must run normally.
        """
        if options:
            return None, None
        bgp = parse_bgp(query) if isinstance(query, str) else query
        info = self._safe_key_info(bgp, limit, budget, project)
        if info is None:
            return None, None
        served = self._safe_serve(
            info, bgp, limit, timeout, decode, cancellation, budget
        )
        return (info.key, info.generation), served

    def count(self, query, timeout: Optional[float] = None, **options) -> int:
        """Solution count through the cache (see base ``count``)."""
        return len(self.evaluate(query, timeout=timeout, **options))

    # -- maintenance / introspection -----------------------------------------

    def clear(self) -> None:
        """Drop every cached result and memoized statistic."""
        self._cache.invalidate_all()
        if self._stats_cache is not None:
            self._stats_cache.clear()

    def cache_stats(self) -> dict:
        out = {
            "results": self._cache.stats(),
            "degraded": self._degraded,
            "generation": repr(self.cache_generation()),
        }
        if self._stats_cache is not None:
            out["planner"] = self._stats_cache.stats()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachedQuerySystem({self._index!r}, {self._cache!r})"
