"""Query-serving caches: canonical BGP result cache, in-flight
coalescing support, and the generation-scoped planner-stats memo.

See INTERNALS §10 for the architecture and invalidation protocol.
"""

from repro.cache.canonical import (
    DEFAULT_SEARCH_BUDGET,
    CanonicalBGP,
    canonical_pattern,
    canonicalize,
    pattern_descriptor,
)
from repro.cache.result_cache import (
    DEFAULT_CAPACITY_BYTES,
    CacheEntry,
    ResultCache,
    estimate_entry_bytes,
)
from repro.cache.stats_cache import PlanStatsCache
from repro.cache.system import CachedQuerySystem, generation_of

__all__ = [
    "DEFAULT_SEARCH_BUDGET",
    "DEFAULT_CAPACITY_BYTES",
    "CanonicalBGP",
    "CacheEntry",
    "CachedQuerySystem",
    "PlanStatsCache",
    "ResultCache",
    "canonical_pattern",
    "canonicalize",
    "estimate_entry_bytes",
    "generation_of",
    "pattern_descriptor",
]
