"""Byte-budgeted LRU result cache with generation-tagged invalidation.

Entries map a canonical cache key (see :mod:`repro.cache.canonical` and
:meth:`repro.cache.system.CachedQuerySystem._key_info`) to the complete
materialised rows of one evaluation, stored in canonical-id space so a
renamed repeat can translate them back to its own variables.

Three properties the serving stack depends on:

- **generation tags** — every entry records the index generation
  (:func:`repro.cache.system.generation_of`) it was computed at and is
  served only on an exact match; any insert/delete/compaction/checkpoint
  bumps the generation, so a stale entry can never outlive a write.
  Mismatched entries are evicted on touch (no sweeper thread needed —
  stale entries age out through the LRU like any cold entry);
- **byte budget** — capacity is accounted in estimated bytes of the
  materialised rows (:func:`estimate_entry_bytes`), not entry counts,
  so one huge result cannot silently pin the memory of thousands of
  small ones; least-recently-used entries are evicted until the budget
  holds, and results larger than the whole budget are refused outright;
- **self-verification** — each entry carries a fingerprint
  (``hash`` of its row tuple) checked on every lookup; a corrupted
  entry is dropped and the query falls through to normal evaluation —
  the ``cache.lookup`` / ``cache.store`` fault sites in
  :mod:`repro.reliability.faults` drill exactly this degradation.

All methods are thread-safe (one re-entrant lock; the broker's workers
share a single instance).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.perf import counters

#: Default byte budget (64 MiB) — a few thousand limit-1000 results.
DEFAULT_CAPACITY_BYTES = 64 << 20


def estimate_entry_bytes(rows: tuple) -> int:
    """Deterministic size model of one entry's materialised rows.

    Approximates CPython's cost of a tuple of ``(canonical_id, value)``
    pair tuples; exactness does not matter, monotonicity in rows x
    columns does — the budget is a lever, not an audit.
    """
    total = 120  # entry object + key + bookkeeping
    for row in rows:
        total += 72 + 48 * len(row)
    return total


class CacheEntry:
    """One cached complete result, in canonical-id space."""

    __slots__ = ("key", "generation", "rows", "fingerprint", "nbytes", "hits")

    def __init__(self, key, generation, rows: tuple) -> None:
        self.key = key
        self.generation = generation
        self.rows = rows
        self.fingerprint = hash(rows)
        self.nbytes = estimate_entry_bytes(rows)
        self.hits = 0


class ResultCache:
    """The byte-budgeted LRU store (see the module docstring)."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[object, CacheEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self._counts = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "invalidated": 0,
            "corrupt_dropped": 0,
            "oversize_rejected": 0,
        }

    # -- the two fault-site entry points -------------------------------------

    def lookup(self, key, generation) -> Optional[CacheEntry]:
        """The entry for ``key`` at exactly ``generation``, else ``None``.

        A generation mismatch or a fingerprint failure evicts the entry
        and reports a miss — the caller falls through to evaluation.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._counts["misses"] += 1
                counters.event("cache.miss")
                return None
            if entry.generation != generation:
                self._drop(key, entry)
                self._counts["invalidated"] += 1
                self._counts["misses"] += 1
                counters.event("cache.invalidated")
                counters.event("cache.miss")
                return None
            if hash(entry.rows) != entry.fingerprint:
                self._drop(key, entry)
                self._counts["corrupt_dropped"] += 1
                self._counts["misses"] += 1
                counters.event("cache.corrupt")
                counters.event("cache.miss")
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self._counts["hits"] += 1
            counters.event("cache.hit")
            return entry

    def store(self, key, generation, rows: tuple) -> bool:
        """Insert (or replace) the complete result for ``key``.

        Returns ``False`` when the result alone exceeds the whole byte
        budget (refused rather than evicting everything else).
        """
        rows = tuple(rows)
        entry = CacheEntry(key, generation, rows)
        if entry.nbytes > self.capacity_bytes:
            with self._lock:
                self._counts["oversize_rejected"] += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = entry
            self._bytes += entry.nbytes
            self._counts["stores"] += 1
            counters.event("cache.store")
            while self._bytes > self.capacity_bytes:
                victim_key, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                self._counts["evictions"] += 1
                counters.event("cache.evict")
        return True

    # -- maintenance ---------------------------------------------------------

    def discard(self, key) -> None:
        """Remove ``key`` if present (served-corrupt cleanup path)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._bytes -= entry.nbytes

    def invalidate_all(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self._counts["invalidated"] += n
            return n

    def _drop(self, key, entry: CacheEntry) -> None:
        # Caller holds the lock.
        self._entries.pop(key, None)
        self._bytes -= entry.nbytes

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        with self._lock:
            out = dict(self._counts)
            out["entries"] = len(self._entries)
            out["bytes"] = self._bytes
            out["capacity_bytes"] = self.capacity_bytes
        looked = out["hits"] + out["misses"]
        out["hit_rate"] = out["hits"] / looked if looked else 0.0
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(entries={len(self)}, bytes={self.bytes_used}/"
            f"{self.capacity_bytes})"
        )
