"""Pointer-based wavelet tree (reference implementation).

This is the textbook structure of §2.3.4 (Figure 5 of the paper): a binary
tree over the alphabet ``[0, sigma)`` where each internal node stores one
bitvector marking whether each of its symbols descends left or right.

The production structure is the pointerless
:class:`~repro.sequences.wavelet_matrix.WaveletMatrix`; this class exists
to cross-validate it (the two must answer every query identically) and to
mirror the paper's exposition, including the worked ``oorcc$o`` example
used in the tests.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.bits.bitvector import BitVector


class _Node:
    __slots__ = ("a", "b", "bits", "left", "right")

    def __init__(self, a: int, b: int) -> None:
        self.a = a
        self.b = b
        self.bits: Optional[BitVector] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class WaveletTree:
    """Static sequence over ``[0, sigma)`` with rank/select/range queries."""

    def __init__(self, values, sigma: int | None = None) -> None:
        seq = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.int64,
        )
        if len(seq) and seq.min() < 0:
            raise ValueError("symbols must be non-negative")
        if sigma is None:
            sigma = int(seq.max()) + 1 if len(seq) else 1
        if len(seq) and int(seq.max()) >= sigma:
            raise ValueError("symbol outside alphabet")
        self._n = len(seq)
        self._sigma = sigma
        self._root = self._build(seq, 0, sigma - 1)

    def _build(self, seq: np.ndarray, a: int, b: int) -> Optional[_Node]:
        node = _Node(a, b)
        if a == b:
            return node  # leaf: stores nothing
        mid = (a + b) // 2
        bits = seq > mid
        node.bits = BitVector.from_bool_array(bits)
        node.left = self._build(seq[~bits], a, mid)
        node.right = self._build(seq[bits], mid + 1, b)
        return node

    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        return self._sigma

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        node = self._root
        while node.a != node.b:
            if node.bits[i]:
                i = node.bits.rank1(i)
                node = node.right
            else:
                i = node.bits.rank0(i)
                node = node.left
        return node.a

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in the prefix ``[0, i)``."""
        if not 0 <= symbol < self._sigma:
            return 0
        i = min(max(i, 0), self._n)
        node = self._root
        while node.a != node.b:
            mid = (node.a + node.b) // 2
            if symbol > mid:
                i = node.bits.rank1(i)
                node = node.right
            else:
                i = node.bits.rank0(i)
                node = node.left
            if i == 0:
                return 0
        return i

    def select(self, symbol: int, k: int) -> int:
        """Position of the k-th occurrence of ``symbol`` (``k >= 1``)."""
        if not 0 <= symbol < self._sigma:
            raise ValueError(f"symbol {symbol} outside alphabet")
        total = self.rank(symbol, self._n)
        if not 1 <= k <= total:
            raise ValueError(f"select({symbol}, {k}): only {total} occurrences")
        path = []
        node = self._root
        while node.a != node.b:
            mid = (node.a + node.b) // 2
            go_right = symbol > mid
            path.append((node, go_right))
            node = node.right if go_right else node.left
        pos = k - 1
        for node, went_right in reversed(path):
            if went_right:
                pos = node.bits.select1(pos + 1)
            else:
                pos = node.bits.select0(pos + 1)
        return pos

    def next_in_range(self, lo: int, hi: int, c: int) -> Optional[int]:
        """Smallest symbol ``>= c`` in ``[lo, hi)`` (range-next-value)."""
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi or c >= self._sigma:
            return None
        return self._next(self._root, lo, hi, max(c, 0))

    def _next(self, node: _Node, lo: int, hi: int, c: int) -> Optional[int]:
        if lo >= hi or node.b < c:
            return None
        if node.a == node.b:
            return node.a
        lo0, hi0 = node.bits.rank0(lo), node.bits.rank0(hi)
        mid = (node.a + node.b) // 2
        if c <= mid:
            res = self._next(node.left, lo0, hi0, c)
            if res is not None:
                return res
        return self._next(node.right, lo - lo0, hi - hi0, c)

    def distinct_in_range(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """Yield ``(symbol, multiplicity)`` over ``[lo, hi)``, ascending."""
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi:
            return
        yield from self._distinct(self._root, lo, hi)

    def _distinct(self, node: _Node, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        if lo >= hi:
            return
        if node.a == node.b:
            yield node.a, hi - lo
            return
        lo0, hi0 = node.bits.rank0(lo), node.bits.rank0(hi)
        yield from self._distinct(node.left, lo0, hi0)
        yield from self._distinct(node.right, lo - lo0, hi - hi0)

    def size_in_bits(self) -> int:
        """Bitvector payloads plus per-node pointer overhead.

        The ``O(σ log n)`` pointer term is exactly why the paper switches
        to the wavelet matrix for its large dictionaries.
        """
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 2 * 64 + 64  # two child pointers + [a,b] header
            if node.bits is not None:
                total += node.bits.size_in_bits()
                stack.append(node.left)
                stack.append(node.right)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaveletTree(n={self._n}, sigma={self._sigma})"
