"""Sequence representations with rank/select/range support.

The ring index stores each of its three bended-BWT components in a
:class:`~repro.sequences.wavelet_matrix.WaveletMatrix` (the pointerless
wavelet tree suited to the large alphabets of graph dictionaries, exactly
as the paper's §4.4 chooses).  A classical pointer-based
:class:`~repro.sequences.wavelet_tree.WaveletTree` is kept as an
executable reference implementation against which the matrix is
cross-validated.
"""

from repro.sequences.wavelet_matrix import WaveletMatrix
from repro.sequences.wavelet_tree import WaveletTree

__all__ = ["WaveletMatrix", "WaveletTree"]
