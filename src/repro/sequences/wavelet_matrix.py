"""Wavelet matrix: a pointerless wavelet tree for large alphabets.

Follows Claude, Navarro & Ordóñez (2015), the structure the paper's
implementation uses (§4.4: "Because the alphabets are generally large, we
implemented the wavelet trees as wavelet matrices").  One bitvector per
bit of the alphabet width; level ``l`` holds, for every element as it
arrives at that level, bit number ``levels - 1 - l`` of its value
(MSB first).  Elements are stably partitioned between levels: zeros first,
then ones, with ``z[l]`` recording the number of zeros.

Supported operations (all ``O(levels)`` bitvector operations):

- ``access``/``rank``/``select`` — the FM-index primitives (Eq. 1–2 of the
  paper);
- ``next_in_range`` — the *range-next-value* operation of §2.3.4, the
  engine of the **backward leap** (Lemma 3.7);
- ``distinct_in_range`` — enumeration of the distinct symbols in a range
  with their multiplicities, the engine of the *lonely variables*
  optimisation (§4.2), in ``O(k log(σ/k))`` node visits;
- ``count`` — number of occurrences of a symbol in a range.

On top of the scalar operations the matrix exposes **batch kernels**
(``rank_many`` / ``count_many`` / ``extract_at`` / ``bucket_starts``)
that run one query per element of a numpy array with O(levels) Python
calls total, by delegating to the bitvector batch kernels level by
level; ``next_in_range`` and ``distinct_in_range`` are iterative
(explicit stack), so deep alphabets neither recurse nor pay Python
frame setup per node.  See ``docs/INTERNALS.md``, "The kernel layer".

The bitvector backend is pluggable: plain (:class:`BitVector`) for the
Ring, RRR-compressed for the C-Ring.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

import numpy as np

from repro.bits.bitvector import BitVector
from repro.bits.rrr import RRRBitVector
from repro.perf.counters import KERNEL_COUNTERS as _perf


class WaveletMatrix:
    """Static sequence over ``[0, sigma)`` with rank/select/range queries.

    Parameters
    ----------
    values:
        The sequence, any integer iterable (``numpy`` array preferred).
    sigma:
        Alphabet size; inferred as ``max + 1`` when omitted.
    compressed:
        Use RRR bitvectors (C-Ring mode) instead of plain ones.
    block_size:
        RRR block size when ``compressed`` (paper's sdsl parameter ``b``,
        mapped as ``b=16 → 15``, ``b=64 → 63``).
    """

    __slots__ = ("_n", "_sigma", "_levels", "_bits", "_zeros")

    def __init__(
        self,
        values,
        sigma: int | None = None,
        compressed: bool = False,
        block_size: int = 15,
    ) -> None:
        if isinstance(values, np.ndarray):
            seq = values.astype(np.int64, copy=False)
        elif hasattr(values, "__len__"):  # sequence/buffer: no list() copy
            seq = np.asarray(values, dtype=np.int64)
        else:  # lazy iterable / generator
            seq = np.fromiter(values, dtype=np.int64)
        if len(seq) and seq.min() < 0:
            raise ValueError("symbols must be non-negative")
        if sigma is None:
            sigma = int(seq.max()) + 1 if len(seq) else 1
        if len(seq) and int(seq.max()) >= sigma:
            raise ValueError("symbol outside alphabet")
        self._n = len(seq)
        self._sigma = sigma
        self._levels = max(1, (sigma - 1).bit_length())
        self._bits = []
        self._zeros = []
        current = seq
        for level in range(self._levels):
            shift = self._levels - 1 - level
            bits = ((current >> shift) & 1).astype(bool)
            if compressed:
                bv = RRRBitVector.from_bool_array(bits, block_size)
            else:
                bv = BitVector.from_bool_array(bits)
            self._bits.append(bv)
            self._zeros.append(int(len(bits) - bits.sum()))
            current = np.concatenate([current[~bits], current[bits]])

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_levels(
        cls,
        levels: list,
        zeros: list[int],
        *,
        n: int,
        sigma: int,
    ) -> "WaveletMatrix":
        """Adopt prebuilt per-level bitvectors without re-partitioning.

        The copy-free assembly path shared by the shared-memory attach,
        the frozen ``mmap_mode`` open and the streaming bulk builder:
        ``levels[l]`` is the level-``l`` bitvector (plain or RRR) and
        ``zeros[l]`` its zero count, exactly as ``__init__`` would have
        produced them.  Buffers are adopted as-is (views stay views).
        """
        wm = cls.__new__(cls)
        wm._n = int(n)
        wm._sigma = int(sigma)
        wm._levels = max(1, (wm._sigma - 1).bit_length())
        if len(levels) != wm._levels or len(zeros) != wm._levels:
            raise ValueError(
                f"expected {wm._levels} levels for sigma={sigma}, got "
                f"{len(levels)} bitvectors / {len(zeros)} zero counts"
            )
        for lvl, bv in enumerate(levels):
            if len(bv) != wm._n:
                raise ValueError(
                    f"level {lvl} has {len(bv)} bits, expected {n}"
                )
        wm._bits = list(levels)
        wm._zeros = [int(z) for z in zeros]
        return wm

    # -- basics -------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return self._sigma

    @property
    def levels(self) -> int:
        """Number of bit levels (``ceil(log2 sigma)``, at least 1)."""
        return self._levels

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        value = 0
        for level in range(self._levels):
            bv = self._bits[level]
            bit = bv[i]
            value = (value << 1) | bit
            if bit:
                i = self._zeros[level] + bv.rank1(i)
            else:
                i = bv.rank0(i)
        return value

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self[i]

    # -- rank / select -------------------------------------------------------

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in the prefix ``[0, i)``."""
        if symbol >= self._sigma or symbol < 0:
            return 0
        i = min(max(i, 0), self._n)
        lo, hi = 0, i
        for level in range(self._levels):
            bv = self._bits[level]
            if (symbol >> (self._levels - 1 - level)) & 1:
                z = self._zeros[level]
                lo = z + bv.rank1(lo)
                hi = z + bv.rank1(hi)
            else:
                lo = bv.rank0(lo)
                hi = bv.rank0(hi)
            if lo >= hi:
                return 0
        return hi - lo

    def count(self, symbol: int, lo: int, hi: int) -> int:
        """Occurrences of ``symbol`` in ``[lo, hi)``."""
        return self.rank(symbol, hi) - self.rank(symbol, lo)

    def rank_many(self, symbol: int, positions) -> np.ndarray:
        """``rank(symbol, ·)`` over a whole array of prefix ends.

        One descent serves every position: the single-coordinate ``lo``
        boundary (which starts at 0, hence follows the symbol's path
        deterministically) stays scalar while the array of ends is mapped
        with the bitvector batch kernels — O(levels) Python calls total.
        """
        started = time.perf_counter() if _perf.enabled else 0.0
        pos = np.asarray(positions, dtype=np.int64)
        ends = np.clip(pos, 0, self._n)
        if symbol < 0 or symbol >= self._sigma:
            return np.zeros(pos.shape, dtype=np.int64)
        lo = 0
        for level in range(self._levels):
            bv = self._bits[level]
            if (symbol >> (self._levels - 1 - level)) & 1:
                z = self._zeros[level]
                lo = z + bv.rank1(lo)
                ends = z + bv.rank1_many(ends)
            else:
                lo = bv.rank0(lo)
                ends = ends - bv.rank1_many(ends)
        out = ends - lo
        if _perf.enabled:
            _perf.record(
                "wavelet.rank_many", pos.size, time.perf_counter() - started
            )
        return out

    def count_many(self, symbol: int, los, his) -> np.ndarray:
        """``count(symbol, ·, ·)`` over arrays of range bounds.

        Both bound arrays ride the same single descent (they are stacked
        into one position array), so the cost matches one
        :meth:`rank_many` call.
        """
        lo_arr = np.asarray(los, dtype=np.int64)
        hi_arr = np.asarray(his, dtype=np.int64)
        if lo_arr.shape != hi_arr.shape:
            raise ValueError("count_many bounds must have matching shapes")
        ranks = self.rank_many(
            symbol, np.concatenate([lo_arr.ravel(), hi_arr.ravel()])
        )
        half = lo_arr.size
        return (ranks[half:] - ranks[:half]).reshape(lo_arr.shape)

    def select(self, symbol: int, k: int) -> int:
        """Position of the k-th occurrence of ``symbol`` (``k >= 1``)."""
        if not 0 <= symbol < self._sigma:
            raise ValueError(f"symbol {symbol} outside alphabet")
        total = self.rank(symbol, self._n)
        if not 1 <= k <= total:
            raise ValueError(f"select({symbol}, {k}): only {total} occurrences")
        # Descend along the symbol's path mapping the bucket start.
        start = 0
        for level in range(self._levels):
            bv = self._bits[level]
            if (symbol >> (self._levels - 1 - level)) & 1:
                start = self._zeros[level] + bv.rank1(start)
            else:
                start = bv.rank0(start)
        pos = start + k - 1
        # Walk back up.
        for level in range(self._levels - 1, -1, -1):
            bv = self._bits[level]
            if (symbol >> (self._levels - 1 - level)) & 1:
                pos = bv.select1(pos - self._zeros[level] + 1)
            else:
                pos = bv.select0(pos + 1)
        return pos

    # -- range operations ------------------------------------------------------

    def next_in_range(self, lo: int, hi: int, c: int) -> Optional[int]:
        """Smallest symbol ``>= c`` occurring in positions ``[lo, hi)``.

        This is the *range-next-value* operation used by the backward leap
        (§2.3.4 / Lemma 3.7).  Returns ``None`` if no such symbol exists.
        Iterative (explicit DFS stack): no recursion depth bound, no per-
        node Python frame setup on the query hot path.
        """
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi or c >= self._sigma:
            return None
        c = max(c, 0)
        levels = self._levels
        # Entries are (level, lo, hi, a, b): the node covers symbols [a, b].
        stack = [(0, lo, hi, 0, (1 << levels) - 1)]
        while stack:
            level, lo, hi, a, b = stack.pop()
            if lo >= hi or b < c:
                continue
            if level == levels:
                if a < self._sigma:
                    return a
                continue
            mid = (a + b) >> 1
            bv = self._bits[level]
            z = self._zeros[level]
            lo0, hi0 = bv.rank0(lo), bv.rank0(hi)
            # Right child below the left one so the left pops first.
            stack.append((level + 1, z + (lo - lo0), z + (hi - hi0), mid + 1, b))
            if c <= mid:
                stack.append((level + 1, lo0, hi0, a, mid))
        return None

    def distinct_in_range(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """Yield ``(symbol, multiplicity)`` for each distinct symbol in
        ``[lo, hi)``, in increasing symbol order.

        Cost is ``O(k log(σ/k))`` node visits for ``k`` distinct symbols —
        the §2.3.4 bound that makes the lonely-variables optimisation pay.
        Iterative (explicit DFS stack), like :meth:`next_in_range`.
        """
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi:
            return
        levels = self._levels
        stack = [(0, lo, hi, 0)]
        while stack:
            level, lo, hi, prefix = stack.pop()
            if lo >= hi:
                continue
            if level == levels:
                if prefix < self._sigma:
                    yield prefix, hi - lo
                continue
            bv = self._bits[level]
            z = self._zeros[level]
            lo0, hi0 = bv.rank0(lo), bv.rank0(hi)
            # Right child below the left one so symbols come out increasing.
            stack.append(
                (level + 1, z + (lo - lo0), z + (hi - hi0), (prefix << 1) | 1)
            )
            stack.append((level + 1, lo0, hi0, prefix << 1))

    def count_distinct(self, lo: int, hi: int) -> int:
        """Number of distinct symbols in ``[lo, hi)``."""
        return sum(1 for _ in self.distinct_in_range(lo, hi))

    def distinct_estimate(self, lo: int, hi: int, max_nodes: int = 64) -> int:
        """Cheap lower bound on the distinct symbols in ``[lo, hi)``.

        Descends level by level keeping the whole frontier of non-empty
        nodes in numpy arrays (one batched rank per level — the same
        machinery as :meth:`count_many`), and stops as soon as the
        frontier exceeds ``max_nodes``.  The frontier size at any level
        is a lower bound on the number of distinct symbols below it, and
        the bound is *exact* whenever the walk reaches the bottom — so
        small ranges get an exact distinct count while large ones cost
        O(``max_nodes`` · levels) regardless of the range size.

        This is the statistic behind the cardinality-guided variable
        ordering: the branching factor a variable would contribute to
        the LTJ search tree, without enumerating any values.
        """
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi:
            return 0
        los = np.array([lo], dtype=np.int64)
        his = np.array([hi], dtype=np.int64)
        prefixes = np.array([0], dtype=np.int64)
        for level in range(self._levels):
            bv = self._bits[level]
            bounds = np.concatenate([los, his])
            ones = bv.rank1_many(bounds)
            lo1, hi1 = ones[: los.size], ones[los.size:]
            lo0, hi0 = los - lo1, his - hi1
            z = self._zeros[level]
            child_lo = np.concatenate([lo0, z + lo1])
            child_hi = np.concatenate([hi0, z + hi1])
            child_prefix = np.concatenate(
                [prefixes << 1, (prefixes << 1) | 1]
            )
            live = child_lo < child_hi
            los, his = child_lo[live], child_hi[live]
            prefixes = child_prefix[live]
            if los.size > max_nodes:
                return int(los.size)
        return int(np.count_nonzero(prefixes < self._sigma))

    def min_in_range(self, lo: int, hi: int) -> Optional[int]:
        """Smallest symbol in ``[lo, hi)``."""
        return self.next_in_range(lo, hi, 0)

    # -- bulk decoding ----------------------------------------------------------

    def extract_at(
        self, positions, return_bottom: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Decode the symbols at an array of positions, level by level.

        With ``return_bottom=True`` additionally returns each position's
        final index at the (virtual) bottom level.  That index equals
        ``bucket_start(symbol) + rank(symbol, position)`` — the access
        descent *is* an LF step — which is what lets
        :meth:`~repro.core.ring.Ring.lf_many` decode whole ranges of
        triples without any per-position rank calls.
        """
        started = time.perf_counter() if _perf.enabled else 0.0
        pos = np.asarray(positions, dtype=np.int64)
        if pos.size and (int(pos.min()) < 0 or int(pos.max()) >= self._n):
            raise IndexError(f"position out of range [0, {self._n})")
        values = np.zeros(pos.shape, dtype=np.int64)
        cur = pos.copy()
        for level in range(self._levels):
            bv = self._bits[level]
            bits = bv.access_many(cur).astype(bool)
            values = (values << 1) | bits
            ones = bv.rank1_many(cur)
            cur = np.where(bits, self._zeros[level] + ones, cur - ones)
        if _perf.enabled:
            _perf.record(
                "wavelet.extract_at", pos.size, time.perf_counter() - started
            )
        if return_bottom:
            return values, cur
        return values

    def bucket_starts(self, symbols) -> np.ndarray:
        """Bottom-level bucket start of each symbol (batched descent).

        The start of symbol ``s``'s bucket is obtained by descending
        position 0 along ``s``'s bit path — exactly the first phase of
        :meth:`select` — batched over an array of symbols in O(levels)
        Python calls.
        """
        syms = np.asarray(symbols, dtype=np.int64)
        starts = np.zeros(syms.shape, dtype=np.int64)
        for level in range(self._levels):
            bv = self._bits[level]
            bit = (syms >> (self._levels - 1 - level)) & 1
            ones = bv.rank1_many(starts)
            starts = np.where(bit == 1, self._zeros[level] + ones, starts - ones)
        return starts

    def extract(self, lo: int = 0, hi: Optional[int] = None) -> np.ndarray:
        """Decode the contiguous slice ``[lo, hi)`` with the batch kernels."""
        hi = self._n if hi is None else min(hi, self._n)
        lo = max(lo, 0)
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        return self.extract_at(np.arange(lo, hi, dtype=np.int64))

    # -- accounting -------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Decode the whole sequence (vectorised level-by-level)."""
        return self.extract(0, self._n)

    def size_in_bits(self) -> int:
        """Bits retained by all level bitvectors plus the header."""
        return sum(bv.size_in_bits() for bv in self._bits) + 64 * (
            len(self._zeros) + 3
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaveletMatrix(n={self._n}, sigma={self._sigma}, "
            f"levels={self._levels})"
        )
