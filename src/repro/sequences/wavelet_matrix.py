"""Wavelet matrix: a pointerless wavelet tree for large alphabets.

Follows Claude, Navarro & Ordóñez (2015), the structure the paper's
implementation uses (§4.4: "Because the alphabets are generally large, we
implemented the wavelet trees as wavelet matrices").  One bitvector per
bit of the alphabet width; level ``l`` holds, for every element as it
arrives at that level, bit number ``levels - 1 - l`` of its value
(MSB first).  Elements are stably partitioned between levels: zeros first,
then ones, with ``z[l]`` recording the number of zeros.

Supported operations (all ``O(levels)`` bitvector operations):

- ``access``/``rank``/``select`` — the FM-index primitives (Eq. 1–2 of the
  paper);
- ``next_in_range`` — the *range-next-value* operation of §2.3.4, the
  engine of the **backward leap** (Lemma 3.7);
- ``distinct_in_range`` — enumeration of the distinct symbols in a range
  with their multiplicities, the engine of the *lonely variables*
  optimisation (§4.2), in ``O(k log(σ/k))`` node visits;
- ``count`` — number of occurrences of a symbol in a range.

The bitvector backend is pluggable: plain (:class:`BitVector`) for the
Ring, RRR-compressed for the C-Ring.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.bits.bitvector import BitVector
from repro.bits.rrr import RRRBitVector


class WaveletMatrix:
    """Static sequence over ``[0, sigma)`` with rank/select/range queries.

    Parameters
    ----------
    values:
        The sequence, any integer iterable (``numpy`` array preferred).
    sigma:
        Alphabet size; inferred as ``max + 1`` when omitted.
    compressed:
        Use RRR bitvectors (C-Ring mode) instead of plain ones.
    block_size:
        RRR block size when ``compressed`` (paper's sdsl parameter ``b``,
        mapped as ``b=16 → 15``, ``b=64 → 63``).
    """

    __slots__ = ("_n", "_sigma", "_levels", "_bits", "_zeros")

    def __init__(
        self,
        values,
        sigma: int | None = None,
        compressed: bool = False,
        block_size: int = 15,
    ) -> None:
        seq = np.asarray(
            list(values) if not isinstance(values, np.ndarray) else values,
            dtype=np.int64,
        )
        if len(seq) and seq.min() < 0:
            raise ValueError("symbols must be non-negative")
        if sigma is None:
            sigma = int(seq.max()) + 1 if len(seq) else 1
        if len(seq) and int(seq.max()) >= sigma:
            raise ValueError("symbol outside alphabet")
        self._n = len(seq)
        self._sigma = sigma
        self._levels = max(1, (sigma - 1).bit_length())
        self._bits = []
        self._zeros = []
        current = seq
        for level in range(self._levels):
            shift = self._levels - 1 - level
            bits = ((current >> shift) & 1).astype(bool)
            if compressed:
                bv = RRRBitVector.from_bool_array(bits, block_size)
            else:
                bv = BitVector.from_bool_array(bits)
            self._bits.append(bv)
            self._zeros.append(int(len(bits) - bits.sum()))
            current = np.concatenate([current[~bits], current[bits]])

    # -- basics -------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return self._sigma

    @property
    def levels(self) -> int:
        """Number of bit levels (``ceil(log2 sigma)``, at least 1)."""
        return self._levels

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        value = 0
        for level in range(self._levels):
            bv = self._bits[level]
            bit = bv[i]
            value = (value << 1) | bit
            if bit:
                i = self._zeros[level] + bv.rank1(i)
            else:
                i = bv.rank0(i)
        return value

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self[i]

    # -- rank / select -------------------------------------------------------

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in the prefix ``[0, i)``."""
        if symbol >= self._sigma or symbol < 0:
            return 0
        i = min(max(i, 0), self._n)
        lo, hi = 0, i
        for level in range(self._levels):
            bv = self._bits[level]
            if (symbol >> (self._levels - 1 - level)) & 1:
                z = self._zeros[level]
                lo = z + bv.rank1(lo)
                hi = z + bv.rank1(hi)
            else:
                lo = bv.rank0(lo)
                hi = bv.rank0(hi)
            if lo >= hi:
                return 0
        return hi - lo

    def count(self, symbol: int, lo: int, hi: int) -> int:
        """Occurrences of ``symbol`` in ``[lo, hi)``."""
        return self.rank(symbol, hi) - self.rank(symbol, lo)

    def select(self, symbol: int, k: int) -> int:
        """Position of the k-th occurrence of ``symbol`` (``k >= 1``)."""
        if not 0 <= symbol < self._sigma:
            raise ValueError(f"symbol {symbol} outside alphabet")
        total = self.rank(symbol, self._n)
        if not 1 <= k <= total:
            raise ValueError(f"select({symbol}, {k}): only {total} occurrences")
        # Descend along the symbol's path mapping the bucket start.
        start = 0
        for level in range(self._levels):
            bv = self._bits[level]
            if (symbol >> (self._levels - 1 - level)) & 1:
                start = self._zeros[level] + bv.rank1(start)
            else:
                start = bv.rank0(start)
        pos = start + k - 1
        # Walk back up.
        for level in range(self._levels - 1, -1, -1):
            bv = self._bits[level]
            if (symbol >> (self._levels - 1 - level)) & 1:
                pos = bv.select1(pos - self._zeros[level] + 1)
            else:
                pos = bv.select0(pos + 1)
        return pos

    # -- range operations ------------------------------------------------------

    def next_in_range(self, lo: int, hi: int, c: int) -> Optional[int]:
        """Smallest symbol ``>= c`` occurring in positions ``[lo, hi)``.

        This is the *range-next-value* operation used by the backward leap
        (§2.3.4 / Lemma 3.7).  Returns ``None`` if no such symbol exists.
        """
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi or c >= self._sigma:
            return None
        c = max(c, 0)
        return self._next_in_node(0, lo, hi, 0, (1 << self._levels) - 1, c)

    def _next_in_node(
        self, level: int, lo: int, hi: int, a: int, b: int, c: int
    ) -> Optional[int]:
        if lo >= hi or b < c:
            return None
        if level == self._levels:
            return a if a < self._sigma else None
        mid = (a + b) >> 1
        bv = self._bits[level]
        z = self._zeros[level]
        lo0, hi0 = bv.rank0(lo), bv.rank0(hi)
        lo1, hi1 = z + (lo - lo0), z + (hi - hi0)
        if c <= mid:
            res = self._next_in_node(level + 1, lo0, hi0, a, mid, c)
            if res is not None:
                return res
        return self._next_in_node(level + 1, lo1, hi1, mid + 1, b, c)

    def distinct_in_range(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """Yield ``(symbol, multiplicity)`` for each distinct symbol in
        ``[lo, hi)``, in increasing symbol order.

        Cost is ``O(k log(σ/k))`` node visits for ``k`` distinct symbols —
        the §2.3.4 bound that makes the lonely-variables optimisation pay.
        """
        lo = max(lo, 0)
        hi = min(hi, self._n)
        if lo >= hi:
            return
        yield from self._distinct_in_node(0, lo, hi, 0)

    def _distinct_in_node(
        self, level: int, lo: int, hi: int, prefix: int
    ) -> Iterator[tuple[int, int]]:
        if lo >= hi:
            return
        if level == self._levels:
            if prefix < self._sigma:
                yield prefix, hi - lo
            return
        bv = self._bits[level]
        z = self._zeros[level]
        lo0, hi0 = bv.rank0(lo), bv.rank0(hi)
        yield from self._distinct_in_node(level + 1, lo0, hi0, prefix << 1)
        yield from self._distinct_in_node(
            level + 1, z + (lo - lo0), z + (hi - hi0), (prefix << 1) | 1
        )

    def count_distinct(self, lo: int, hi: int) -> int:
        """Number of distinct symbols in ``[lo, hi)``."""
        return sum(1 for _ in self.distinct_in_range(lo, hi))

    def min_in_range(self, lo: int, hi: int) -> Optional[int]:
        """Smallest symbol in ``[lo, hi)``."""
        return self.next_in_range(lo, hi, 0)

    # -- accounting -------------------------------------------------------------

    def to_numpy(self) -> np.ndarray:
        """Decode the whole sequence (testing/debug)."""
        return np.fromiter(self, dtype=np.int64, count=self._n)

    def size_in_bits(self) -> int:
        """Bits retained by all level bitvectors plus the header."""
        return sum(bv.size_in_bits() for bv in self._bits) + 64 * (
            len(self._zeros) + 3
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaveletMatrix(n={self._n}, sigma={self._sigma}, "
            f"levels={self._levels})"
        )
