"""Cyclic *unidirectional* indexing (the Brisaboa-et-al. regime).

Figure 2's middle scheme: triples are cyclic but the index can only
extend patterns in one direction, so **two** orders are needed to cover
all triple patterns (class CTW of §6, versus the ring's CBW/CBTW one).

We realise it with two rings — one over the natural cycle ``s → p → o``
and one over the reversed cycle ``s → o → p`` (triples re-encoded as
``(s, o, p)``) — and forbid forward leaps: whenever the natural ring
would need a forward leap, the reversed ring answers it backwards.
This isolates exactly the paper's bidirectionality contribution: same
query algorithm, twice the space.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


from repro.core.iterators import RingIterator
from repro.core.ring import Ring
from repro.core.system import BaseLTJSystem
from repro.graph.dataset import Graph
from repro.graph.model import O, P, S, TriplePattern, Var


def _reversed_graph(graph: Graph) -> Graph:
    """Re-encode triples as ``(s, o, p)`` so a standard ring indexes the
    reversed cycle.  Universes are padded so both id spaces fit."""
    t = graph.triples
    swapped = t[:, [S, O, P]] if len(t) else t
    return Graph(
        swapped,
        n_nodes=max(graph.n_nodes, graph.n_predicates),
        n_predicates=max(graph.n_nodes, 1),
    )


def _swap_pattern(pattern: TriplePattern) -> TriplePattern:
    """Map a pattern into the reversed ring's coordinates."""
    return TriplePattern(pattern.s, pattern.o, pattern.p)


class CyclicUnidirectionalIterator:
    """Backward-only leaps, routed to whichever ring supports them."""

    def __init__(self, forward_ring: Ring, reversed_ring: Ring,
                 pattern: TriplePattern) -> None:
        self._it1 = RingIterator(forward_ring, pattern)
        self._it2 = RingIterator(reversed_ring, _swap_pattern(pattern))
        self._pattern = pattern

    @property
    def pattern(self) -> TriplePattern:
        return self._pattern

    def count(self) -> int:
        return self._it1.count()

    def _route(self, var: Var) -> RingIterator:
        direction = self._it1.leap_direction(var)
        if direction in ("backward", "free", "repeated"):
            return self._it1
        return self._it2  # forward in ring 1 == backward in ring 2

    def leap(self, var: Var, c: int) -> Optional[int]:
        return self._route(var).leap(var, c)

    def bind(self, var: Var, value: int) -> None:
        self._it1.bind(var, value)
        self._it2.bind(var, value)

    def unbind(self, var: Var) -> None:
        self._it2.unbind(var)
        self._it1.unbind(var)

    def values(self, var: Var) -> Iterator[int]:
        return self._route(var).values(var)

    def preferred_lonely(self, candidates: Iterable[Var]) -> Var:
        return self._it1.preferred_lonely(candidates)


class CyclicUnidirectionalIndex(BaseLTJSystem):
    """LTJ over two backward-only rings (CTW-class ablation)."""

    name = "Cyclic-2R"

    def __init__(
        self,
        graph: Graph,
        use_lonely: bool = True,
        use_ordering: bool = True,
    ) -> None:
        super().__init__(graph, use_lonely=use_lonely, use_ordering=use_ordering)
        self._ring1 = Ring(graph)
        self._ring2 = Ring(_reversed_graph(graph))

    def iterator(self, pattern: TriplePattern) -> CyclicUnidirectionalIterator:
        return CyclicUnidirectionalIterator(self._ring1, self._ring2, pattern)

    def size_in_bits(self) -> int:
        return self._ring1.size_in_bits() + self._ring2.size_in_bits()
