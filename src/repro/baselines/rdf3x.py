"""RDF-3X regime: compressed clustered orders + pairwise join optimiser.

RDF-3X (§5.1) "indexes a single table of triples in a compressed
clustered B+-tree.  The triples are sorted, so that those in each
B+-tree leaf can be differentially encoded" — and it keeps every
permutation, answering triple patterns with range scans and joining
pairwise under a cost-based optimiser.

Here each of the six orders is a sequence of front-coded blocks
(:mod:`repro.bits.codecs`) with an in-memory array of per-block first
keys and row offsets; scans decode whole blocks, and the join engine is
the pairwise one with hash joins (RDF-3X's MJ/HJ mix collapses to the
same complexity class at our scale).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.baselines.pairwise import PairwiseJoinEngine, PairwiseSystemMixin
from repro.baselines.sorted_orders import ALL_ORDERS
from repro.bits.codecs import decode_triple_block, encode_triple_block
from repro.core.interface import pattern_constants
from repro.core.system import BaseQuerySystem
from repro.graph.dataset import Graph
from repro.graph.model import P, TriplePattern

BLOCK_TRIPLES = 128


class CompressedOrder:
    """One permutation, front-coded in blocks of ``BLOCK_TRIPLES``."""

    def __init__(
        self, graph: Graph, perm: Sequence[int], block_triples: int = BLOCK_TRIPLES
    ) -> None:
        self.perm = tuple(perm)
        sizes = [
            graph.n_nodes if attr != P else graph.n_predicates for attr in perm
        ]
        self._sizes = tuple(int(max(s, 1)) for s in sizes)
        self._strides = (
            self._sizes[1] * self._sizes[2],
            self._sizes[2],
            1,
        )
        cols = [graph.triples[:, attr].astype(np.int64) for attr in perm]
        keys = np.sort(
            cols[0] * self._strides[0] + cols[1] * self._strides[1] + cols[2]
        )
        reordered = [
            (
                int(k) // self._strides[0] % self._sizes[0],
                int(k) // self._strides[1] % self._sizes[1],
                int(k) % self._sizes[2],
            )
            for k in keys
        ]
        self._blocks: list[bytes] = []
        first_keys = []
        offsets = [0]
        for start in range(0, len(reordered), block_triples):
            chunk = reordered[start : start + block_triples]
            self._blocks.append(encode_triple_block(chunk))
            first_keys.append(int(keys[start]))
            offsets.append(offsets[-1] + len(chunk))
        self._first_keys = np.array(first_keys, dtype=np.int64)
        self._offsets = np.array(offsets, dtype=np.int64)
        self._n = len(keys)

    @property
    def n(self) -> int:
        return self._n

    def _prefix_key(self, values: Sequence[int]) -> int:
        key = 0
        for depth, v in enumerate(values):
            key += int(v) * self._strides[depth]
        return key

    def _key_of(self, triple_in_order: tuple[int, int, int]) -> int:
        a, b, c = triple_in_order
        return a * self._strides[0] + b * self._strides[1] + c

    def scan(self, values: Sequence[int]) -> Iterator[tuple[int, int, int]]:
        """Triples (in s,p,o position order) matching the order-prefix."""
        depth = len(values)
        if self._n == 0:
            return
        lo_key = self._prefix_key(values)
        hi_key = lo_key + (self._strides[depth - 1] if depth else (1 << 62))
        # First block that could contain lo_key.
        b = max(int(np.searchsorted(self._first_keys, lo_key, side="right")) - 1, 0)
        while b < len(self._blocks):
            if self._first_keys[b] >= hi_key:
                return
            for t in decode_triple_block(self._blocks[b]):
                key = self._key_of(t)
                if key < lo_key:
                    continue
                if key >= hi_key:
                    return
                out = [0, 0, 0]
                for d, attr in enumerate(self.perm):
                    out[attr] = t[d]
                yield tuple(out)
            b += 1

    def estimate(self, values: Sequence[int]) -> int:
        """Block-granular row estimate for the optimiser."""
        depth = len(values)
        if self._n == 0:
            return 0
        lo_key = self._prefix_key(values)
        hi_key = lo_key + (self._strides[depth - 1] if depth else (1 << 62))
        lo_b = max(int(np.searchsorted(self._first_keys, lo_key, "right")) - 1, 0)
        hi_b = int(np.searchsorted(self._first_keys, hi_key, "left"))
        return max(int(self._offsets[hi_b] - self._offsets[lo_b]), 1)

    def size_in_bits(self) -> int:
        payload = 8 * sum(len(b) for b in self._blocks)
        directory = 64 * (len(self._first_keys) + len(self._offsets))
        return payload + directory + 256


class _CompressedScanProvider:
    def __init__(self, orders: dict[tuple[int, int, int], CompressedOrder]) -> None:
        self._orders = orders

    def _covering(self, constants: dict[int, int]):
        bound = frozenset(constants)
        for perm, order in self._orders.items():
            if set(perm[: len(bound)]) == bound:
                return order, [constants[a] for a in perm[: len(bound)]]
        raise LookupError(f"no order covers constant mask {sorted(bound)}")

    def scan_pattern(self, pattern: TriplePattern):
        order, values = self._covering(pattern_constants(pattern))
        return order.scan(values)

    def estimate_pattern(self, pattern: TriplePattern) -> int:
        order, values = self._covering(pattern_constants(pattern))
        return order.estimate(values)


class RDF3XIndex(PairwiseSystemMixin, BaseQuerySystem):
    """Six compressed clustered orders, pairwise hash joins."""

    name = "RDF-3X"

    def __init__(self, graph: Graph, block_triples: int = BLOCK_TRIPLES) -> None:
        super().__init__(graph)
        self._orders = {
            perm: CompressedOrder(graph, perm, block_triples)
            for perm in ALL_ORDERS
        }
        self._engine = PairwiseJoinEngine(
            _CompressedScanProvider(self._orders), method="hash"
        )

    def size_in_bits(self) -> int:
        return sum(o.size_in_bits() for o in self._orders.values()) + 128
