"""Pairwise join engines (the non-wco regimes of §5.1).

The paper's database baselines evaluate BGPs with binary join trees:
Jena uses nested-loop (index) joins, Blazegraph and Virtuoso add hash
joins, RDF-3X drives merge/hash joins from a cost-based optimiser.  As
§2.2.2 proves, no such plan is wco — queries like triangles blow up on
the intermediate results, which is exactly the behaviour the benchmarks
should (and do) exhibit.

The engine works over a *scan provider*: any index able to (a) estimate
and (b) stream the matches of one triple pattern.  Planning is greedy
smallest-estimate-first with a connectivity constraint, a faithful stand-
in for these systems' default BGP optimisers.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Protocol, Union

from repro.graph.model import BasicGraphPattern, TriplePattern, Var
from repro.reliability.budget import ResourceBudget


class ScanProvider(Protocol):
    """Index-side interface: per-pattern scans and cardinality estimates."""

    def scan_pattern(self, pattern: TriplePattern) -> Iterator[tuple[int, int, int]]:
        """Stream the triples matching the pattern's constants."""
        ...

    def estimate_pattern(self, pattern: TriplePattern) -> int:
        """(Approximate) number of matching triples."""
        ...


def match_binding(
    pattern: TriplePattern, triple: tuple[int, int, int]
) -> Optional[dict[Var, int]]:
    """Bindings making ``pattern`` equal ``triple`` (repeated vars ok)."""
    binding: dict[Var, int] = {}
    for term, value in zip(pattern.terms, triple):
        if isinstance(term, Var):
            if term in binding and binding[term] != value:
                return None
            binding[term] = value
        elif term != value:
            return None
    return binding


class PairwiseJoinEngine:
    """Greedy left-deep pairwise evaluation of basic graph patterns."""

    def __init__(self, provider: ScanProvider, method: str = "nested") -> None:
        if method not in ("nested", "hash"):
            raise ValueError("method must be 'nested' or 'hash'")
        self._provider = provider
        self._method = method

    # -- planning --------------------------------------------------------------

    def plan(self, bgp: BasicGraphPattern) -> list[TriplePattern]:
        """Greedy join order: cheapest pattern first, stay connected."""
        remaining = bgp.patterns
        ordered: list[TriplePattern] = []
        bound_vars: set[Var] = set()
        while remaining:
            connected = [
                t for t in remaining if set(t.variables()) & bound_vars
            ]
            pool = connected if connected and ordered else remaining
            best = min(pool, key=self._provider.estimate_pattern)
            ordered.append(best)
            bound_vars |= set(best.variables())
            remaining.remove(best)
        return ordered

    # -- evaluation ---------------------------------------------------------------

    def evaluate(
        self,
        bgp: BasicGraphPattern,
        timeout: Union[None, float, ResourceBudget] = None,
        stats: Optional[dict] = None,
    ) -> Iterator[dict[Var, int]]:
        """Stream solutions.  ``timeout`` is seconds or a shared
        :class:`~repro.reliability.budget.ResourceBudget`.  When
        ``stats`` is given it receives an ``"operations"`` counter
        (tuples scanned / probed) once the stream is consumed or closed
        — the empirical handle on the non-wco intermediate-result
        blow-up of §2.2.2."""
        deadline = ResourceBudget.coerce(timeout)
        plan = self.plan(bgp)
        counter = [0]
        try:
            if self._method == "nested":
                yield from self._nested(plan, 0, {}, deadline, counter)
            else:
                yield from self._hash_join(plan, deadline, counter)
        finally:
            if stats is not None:
                stats["operations"] = counter[0]

    def _tick(self, deadline: ResourceBudget, counter: list[int]) -> None:
        counter[0] += 1
        deadline.tick()

    # nested-loop index join: substitute current bindings, probe the index.
    def _nested(
        self,
        plan: list[TriplePattern],
        depth: int,
        binding: dict[Var, int],
        deadline: ResourceBudget,
        counter: list[int],
    ) -> Iterator[dict[Var, int]]:
        if depth == len(plan):
            yield dict(binding)
            return
        concrete = plan[depth].substitute(binding)
        for triple in self._provider.scan_pattern(concrete):
            self._tick(deadline, counter)
            extension = match_binding(concrete, triple)
            if extension is None:
                continue
            binding.update(extension)
            yield from self._nested(
                plan, depth + 1, binding, deadline, counter
            )
            for var in extension:
                del binding[var]

    # hash join: materialise each pattern's matches, probe on shared vars.
    def _hash_join(
        self,
        plan: list[TriplePattern],
        deadline: ResourceBudget,
        counter: list[int],
    ) -> Iterator[dict[Var, int]]:
        results: list[dict[Var, int]] = [{}]
        bound_vars: set[Var] = set()
        for pattern in plan:
            shared = sorted(
                (set(pattern.variables()) & bound_vars), key=lambda v: v.name
            )
            table: dict[tuple[int, ...], list[dict[Var, int]]] = {}
            for triple in self._provider.scan_pattern(pattern):
                self._tick(deadline, counter)
                extension = match_binding(pattern, triple)
                if extension is None:
                    continue
                key = tuple(extension[v] for v in shared)
                table.setdefault(key, []).append(extension)
            joined: list[dict[Var, int]] = []
            for binding in results:
                self._tick(deadline, counter)
                key = tuple(binding[v] for v in shared)
                for extension in table.get(key, ()):
                    merged = dict(binding)
                    ok = True
                    for var, value in extension.items():
                        if merged.get(var, value) != value:
                            ok = False
                            break
                        merged[var] = value
                    if ok:
                        joined.append(merged)
            results = joined
            if not results:
                return
            bound_vars |= set(pattern.variables())
        yield from results


class PairwiseSystemMixin:
    """Glue: a BaseQuerySystem whose `_solutions` is a pairwise engine."""

    _engine: PairwiseJoinEngine

    def _solutions(
        self,
        bgp: BasicGraphPattern,
        timeout: Optional[float],
        stats: Optional[dict] = None,
        **options,
    ) -> Iterable[dict[Var, int]]:
        return self._engine.evaluate(bgp, timeout=timeout, stats=stats)
