"""Jena / Jena-LTJ / Blazegraph regimes: B+tree triple orders.

- :class:`JenaIndex`: the reference SPARQL store regime — B+trees in the
  three orders ``spo``, ``pos``, ``osp`` (which cover *lookups* for every
  constant mask but cannot support wco leaps) and pairwise nested-loop
  index joins.
- :class:`JenaLTJIndex`: Hogan et al.'s LTJ on top of Jena — all six
  orders in B+trees, driven by the same LTJ engine as the ring.
- :class:`BlazegraphIndex`: Blazegraph's triples mode — the same three
  orders as Jena, with hash joins (the engine behind the Wikidata Query
  Service per §5.1).
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.btree import BTreeOrder
from repro.baselines.pairwise import PairwiseJoinEngine, PairwiseSystemMixin
from repro.baselines.sorted_orders import ALL_ORDERS, OrderSet, OrderSetIterator
from repro.core.interface import pattern_constants
from repro.core.system import BaseLTJSystem, BaseQuerySystem
from repro.graph.dataset import Graph
from repro.graph.model import O, P, S, TriplePattern

THREE_ORDERS = ((S, P, O), (P, O, S), (O, S, P))


class _BTreeScanProvider:
    """Pattern scans over a set of B+tree orders."""

    def __init__(self, orders: OrderSet) -> None:
        self._orders = orders

    def _covering(self, constants: dict[int, int]):
        bound = frozenset(constants)
        for perm, order in self._orders.orders.items():
            if set(perm[: len(bound)]) == bound:
                return order, [constants[a] for a in perm[: len(bound)]]
        raise LookupError(f"no order covers constant mask {sorted(bound)}")

    def scan_pattern(
        self, pattern: TriplePattern
    ) -> Iterator[tuple[int, int, int]]:
        order, values = self._covering(pattern_constants(pattern))
        return order.scan(values)

    def estimate_pattern(self, pattern: TriplePattern) -> int:
        order, values = self._covering(pattern_constants(pattern))
        lo, hi = order.prefix_range(values)
        return hi - lo


class JenaIndex(PairwiseSystemMixin, BaseQuerySystem):
    """Three B+tree orders, nested-loop pairwise joins (non-wco)."""

    name = "Jena"

    def __init__(self, graph: Graph, fanout: int = 64) -> None:
        super().__init__(graph)
        self._orders = OrderSet(
            graph,
            THREE_ORDERS,
            order_factory=lambda g, p: BTreeOrder(g, p, fanout),
        )
        self._engine = PairwiseJoinEngine(
            _BTreeScanProvider(self._orders), method="nested"
        )

    def size_in_bits(self) -> int:
        return self._orders.size_in_bits()


class BlazegraphIndex(PairwiseSystemMixin, BaseQuerySystem):
    """Three B+tree orders, hash pairwise joins (non-wco)."""

    name = "Blazegraph"

    def __init__(self, graph: Graph, fanout: int = 64) -> None:
        super().__init__(graph)
        self._orders = OrderSet(
            graph,
            THREE_ORDERS,
            order_factory=lambda g, p: BTreeOrder(g, p, fanout),
        )
        self._engine = PairwiseJoinEngine(
            _BTreeScanProvider(self._orders), method="hash"
        )

    def size_in_bits(self) -> int:
        return self._orders.size_in_bits()


class JenaLTJIndex(BaseLTJSystem):
    """All six B+tree orders, wco LTJ (the Jena-LTJ regime)."""

    name = "Jena-LTJ"

    def __init__(
        self,
        graph: Graph,
        fanout: int = 64,
        use_lonely: bool = True,
        use_ordering: bool = True,
    ) -> None:
        super().__init__(graph, use_lonely=use_lonely, use_ordering=use_ordering)
        self._orders = OrderSet(
            graph,
            ALL_ORDERS,
            order_factory=lambda g, p: BTreeOrder(g, p, fanout),
        )

    def iterator(self, pattern: TriplePattern) -> OrderSetIterator:
        return OrderSetIterator(self._orders, pattern)

    def size_in_bits(self) -> int:
        return self._orders.size_in_bits()
