"""Baseline systems: from-scratch analogues of the paper's competitors.

Each class realises the *algorithmic regime* of one system from §5.1
(see DESIGN.md §4 for the mapping):

- :class:`~repro.baselines.flat_trie.FlatTrieIndex` — all 3! = 6 orders
  materialised, wco LTJ (EmptyHeaded regime; "Flat" in Figure 2);
- :class:`~repro.baselines.jena.JenaIndex` — 3 B+tree orders, pairwise
  nested-loop joins (Jena regime);
- :class:`~repro.baselines.jena.JenaLTJIndex` — 6 B+tree orders, wco LTJ
  (Jena-LTJ regime);
- :class:`~repro.baselines.jena.BlazegraphIndex` — 3 B+tree orders,
  pairwise hash joins (Blazegraph regime);
- :class:`~repro.baselines.rdf3x.RDF3XIndex` — 6 delta-compressed
  clustered orders, pairwise merge/hash joins (RDF-3X regime);
- :class:`~repro.baselines.virtuoso.VirtuosoIndex` — predicate-oriented
  column index, pairwise hash joins (Virtuoso regime);
- :class:`~repro.baselines.qdag.QdagIndex` — k²-tree quadtree join, the
  succinct wco competitor (Qdag regime);
- :class:`~repro.baselines.cyclic.CyclicUnidirectionalIndex` — two
  backward-only rings (the Brisaboa-et-al. CSA regime / "Cycle" in
  Figure 2), the paper's bidirectionality ablation.
"""

from repro.baselines.cyclic import CyclicUnidirectionalIndex
from repro.baselines.flat_trie import FlatTrieIndex
from repro.baselines.jena import BlazegraphIndex, JenaIndex, JenaLTJIndex
from repro.baselines.qdag import QdagIndex, UnsupportedQueryError
from repro.baselines.rdf3x import RDF3XIndex
from repro.baselines.virtuoso import VirtuosoIndex
from repro.baselines.yannakakis import EmptyHeadedIndex

__all__ = [
    "BlazegraphIndex",
    "EmptyHeadedIndex",
    "CyclicUnidirectionalIndex",
    "FlatTrieIndex",
    "JenaIndex",
    "JenaLTJIndex",
    "QdagIndex",
    "RDF3XIndex",
    "UnsupportedQueryError",
    "VirtuosoIndex",
]
