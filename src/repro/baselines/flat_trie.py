"""The flat 6-order wco index (EmptyHeaded regime).

"In the (traditional) flat indexing scheme, we require six orders for wco
joins using LTJ" (§1, Figure 2).  This system materialises all ``3! = 6``
sorted permutations of the triples and runs the same LTJ engine as the
ring on top of them.  It is the fast-but-fat end of the paper's
space/time trade-off: expect the best raw leap constants (binary search
on flat arrays beats wavelet-matrix navigation) at several times the
ring's space.
"""

from __future__ import annotations

from repro.baselines.sorted_orders import ALL_ORDERS, OrderSet, OrderSetIterator
from repro.core.system import BaseLTJSystem
from repro.graph.dataset import Graph
from repro.graph.model import TriplePattern


class FlatTrieIndex(BaseLTJSystem):
    """LTJ over all six sorted triple orders."""

    name = "FlatTrie"

    def __init__(
        self,
        graph: Graph,
        use_lonely: bool = True,
        use_ordering: bool = True,
    ) -> None:
        super().__init__(graph, use_lonely=use_lonely, use_ordering=use_ordering)
        self._orders = OrderSet(graph, ALL_ORDERS)

    def iterator(self, pattern: TriplePattern) -> OrderSetIterator:
        return OrderSetIterator(self._orders, pattern)

    def size_in_bits(self) -> int:
        return self._orders.size_in_bits()
