"""Yannakakis' algorithm and the EmptyHeaded-regime evaluator.

EmptyHeaded (§5.2.2) "works with the generalised tree decomposition of
queries … where the tree is evaluated using Yannakakis' algorithm".
The paper *speculates* that this is why EmptyHeaded loses to the ring
on simple tree-shaped queries ("we speculate [Yannakakis] is not so
well optimised for simple tree-like queries or long paths that may give
rise to multiple lonely variables at the end").  Implementing the real
thing lets the benchmark suite measure that speculation instead of
repeating it:

- :func:`gyo_reduction` — GYO ear removal over the query hypergraph;
  returns a join forest when the basic graph pattern is α-acyclic.
- :class:`YannakakisEvaluator` — full materialisation of each pattern,
  two semijoin sweeps (leaves→root, root→leaves), then a bottom-up
  backtracking join.  Linear in input + output for acyclic queries, but
  with full-scan constants and no lonely-variable shortcuts.
- :class:`EmptyHeadedIndex` — the packaged system: all six orders (the
  flat scheme), Yannakakis for acyclic queries, LTJ for cyclic ones —
  exactly EmptyHeaded's split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.baselines.pairwise import match_binding
from repro.baselines.sorted_orders import ALL_ORDERS, OrderSet, OrderSetIterator
from repro.core.interface import pattern_constants
from repro.reliability.budget import ResourceBudget
from repro.core.ltj import LeapfrogTrieJoin
from repro.core.system import BaseQuerySystem
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, TriplePattern, Var


@dataclass
class JoinTreeNode:
    """One pattern in the join forest; ``parent`` is an index or None."""

    index: int
    parent: Optional[int]


def gyo_reduction(bgp: BasicGraphPattern) -> Optional[list[JoinTreeNode]]:
    """GYO ear removal; ``None`` when the query hypergraph is cyclic.

    An *ear* is a pattern whose variables are each either exclusive to
    it or all contained in one other pattern (its witness/parent).
    Repeatedly removing ears empties exactly the α-acyclic hypergraphs.
    Nodes are returned in removal order, so reversing gives a
    top-down/leaves-last order for the semijoin sweeps.
    """
    var_sets = {i: set(t.variables()) for i, t in enumerate(bgp.patterns)}
    alive = set(var_sets)
    removal: list[JoinTreeNode] = []
    changed = True
    while alive and changed:
        changed = False
        for i in sorted(alive):
            others = alive - {i}
            # Variables shared with some other live pattern.
            shared = {
                v
                for v in var_sets[i]
                if any(v in var_sets[j] for j in others)
            }
            if not shared:
                removal.append(JoinTreeNode(i, None))
                alive.discard(i)
                changed = True
                break
            witness = next(
                (j for j in sorted(others) if shared <= var_sets[j]), None
            )
            if witness is not None:
                removal.append(JoinTreeNode(i, witness))
                alive.discard(i)
                changed = True
                break
    if alive:
        return None  # cyclic
    return removal


class YannakakisEvaluator:
    """Acyclic BGP evaluation: materialise, semijoin, join bottom-up."""

    def __init__(self, scan_provider) -> None:
        self._provider = scan_provider

    def evaluate(
        self,
        bgp: BasicGraphPattern,
        forest: list[JoinTreeNode],
        timeout: Union[None, float, ResourceBudget] = None,
    ) -> Iterator[dict[Var, int]]:
        budget = ResourceBudget.coerce(timeout)
        patterns = bgp.patterns
        tick = budget.tick

        # 1. Materialise each pattern's bindings.
        relations: dict[int, list[dict[Var, int]]] = {}
        for i, pattern in enumerate(patterns):
            rows = []
            for triple in self._provider.scan_pattern(pattern):
                tick()
                binding = match_binding(pattern, triple)
                if binding is not None:
                    rows.append(binding)
            if not rows:
                return
            relations[i] = rows

        children: dict[int, list[int]] = {node.index: [] for node in forest}
        for node in forest:
            if node.parent is not None:
                children[node.parent].append(node.index)

        # 2. Upward semijoins: forest order is removal order (leaves
        # first), so parents are filtered after all their children.
        for node in forest:
            if node.parent is None:
                continue
            tick()
            relations[node.parent] = _semijoin(
                relations[node.parent],
                relations[node.index],
                patterns[node.parent],
                patterns[node.index],
            )
            if not relations[node.parent]:
                return
        # 3. Downward semijoins (reverse order: roots first).
        for node in reversed(forest):
            if node.parent is None:
                continue
            tick()
            relations[node.index] = _semijoin(
                relations[node.index],
                relations[node.parent],
                patterns[node.index],
                patterns[node.parent],
            )
            if not relations[node.index]:
                return

        # 4. Backtracking join, roots first so every non-root probes its
        # (already bound) parent through a hash on the shared variables.
        nodes = list(reversed(forest))
        probes: dict[int, tuple[list[Var], dict[tuple, list[dict[Var, int]]]]] = {}
        for node in nodes:
            if node.parent is None:
                continue
            shared = sorted(
                set(patterns[node.index].variables())
                & set(patterns[node.parent].variables()),
                key=lambda v: v.name,
            )
            table: dict[tuple, list[dict[Var, int]]] = {}
            for row in relations[node.index]:
                table.setdefault(
                    tuple(row[v] for v in shared), []
                ).append(row)
            probes[node.index] = (shared, table)
        yield from self._enumerate(nodes, 0, relations, probes, {}, tick)

    def _enumerate(
        self,
        nodes: list[JoinTreeNode],
        depth: int,
        relations: dict[int, list[dict[Var, int]]],
        probes: dict,
        binding: dict[Var, int],
        tick,
    ) -> Iterator[dict[Var, int]]:
        if depth == len(nodes):
            yield dict(binding)
            return
        node = nodes[depth]
        if node.parent is None:
            rows: Iterable[dict[Var, int]] = relations[node.index]
        else:
            shared, table = probes[node.index]
            rows = table.get(tuple(binding[v] for v in shared), ())
        for row in rows:
            tick()
            merged: Optional[dict[Var, int]] = dict(binding)
            for var, value in row.items():
                if merged.get(var, value) != value:
                    merged = None
                    break
                merged[var] = value
            if merged is None:
                continue
            yield from self._enumerate(
                nodes, depth + 1, relations, probes, merged, tick
            )


def _semijoin(
    keep: list[dict[Var, int]],
    probe: list[dict[Var, int]],
    keep_pattern: TriplePattern,
    probe_pattern: TriplePattern,
) -> list[dict[Var, int]]:
    """``keep ⋉ probe`` on their shared variables."""
    shared = sorted(
        set(keep_pattern.variables()) & set(probe_pattern.variables()),
        key=lambda v: v.name,
    )
    if not shared:
        return keep if probe else []
    keys = {tuple(row[v] for v in shared) for row in probe}
    return [row for row in keep if tuple(row[v] for v in shared) in keys]


class _FlatScanProvider:
    """Pattern scans over the six sorted orders."""

    def __init__(self, orders: OrderSet) -> None:
        self._orders = orders

    def scan_pattern(
        self, pattern: TriplePattern
    ) -> Iterator[tuple[int, int, int]]:
        constants = pattern_constants(pattern)
        bound = frozenset(constants)
        for perm, order in self._orders.orders.items():
            if set(perm[: len(bound)]) == bound:
                return order.scan([constants[a] for a in perm[: len(bound)]])
        raise LookupError(f"no order covers constant mask {sorted(bound)}")


class EmptyHeadedIndex(BaseQuerySystem):
    """Six flat orders; Yannakakis on acyclic queries, LTJ on cyclic.

    The closest analogue of EmptyHeaded's generalised-tree-decomposition
    split at arity 3, where the cyclic core of a BGP is the whole BGP
    whenever GYO fails (triangles, squares) and the acyclic part is
    handled by Yannakakis.
    """

    name = "EmptyHeaded"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._orders = OrderSet(graph, ALL_ORDERS)
        self._scan = _FlatScanProvider(self._orders)
        self._yannakakis = YannakakisEvaluator(self._scan)
        self._ltj = LeapfrogTrieJoin(
            lambda pattern: OrderSetIterator(self._orders, pattern),
            graph.n_triples,
            use_lonely=False,  # EmptyHeaded has no lonely-variable pass
        )

    def _solutions(
        self,
        bgp: BasicGraphPattern,
        timeout: Optional[float],
        **options,
    ) -> Iterable[dict[Var, int]]:
        forest = gyo_reduction(bgp)
        if forest is not None:
            return self._yannakakis.evaluate(bgp, forest, timeout=timeout)
        return self._ltj.evaluate(bgp, timeout=timeout)

    def size_in_bits(self) -> int:
        return self._orders.size_in_bits()
