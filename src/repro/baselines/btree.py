"""A bulk-loaded B+tree over 64-bit composite keys.

This is the disk-style substrate behind the Jena / Jena-LTJ / Blazegraph
regimes (§5.1 of the paper: "B+-trees indexes in three orders", "all six
different orders on triples are indexed in B+-trees").  Keys are the same
composite triple keys as :class:`~repro.baselines.sorted_orders.SortedOrder`
uses, so one B+tree per attribute permutation yields a trie-equivalent
index with realistic node overhead (separator keys, child pointers,
partially-filled leaves) that the space accounting reflects.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.graph.dataset import Graph
from repro.graph.model import P

DEFAULT_FANOUT = 64
FILL_FACTOR = 0.75  # B+trees bulk-load leaves partially full


class BPlusTree:
    """Static B+tree over a sorted ``uint64`` key array.

    Supports ``seek`` (first position with key >= probe), positional
    ``get``, and range iteration — everything the order wrappers need.
    """

    def __init__(self, keys: np.ndarray, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) > 1 and np.any(np.diff(keys) < 0):
            raise ValueError("keys must be sorted")
        self._fanout = fanout
        per_leaf = max(2, int(fanout * FILL_FACTOR))
        self._leaves: list[np.ndarray] = [
            keys[i : i + per_leaf] for i in range(0, len(keys), per_leaf)
        ] or [keys]
        self._leaf_offsets = np.zeros(len(self._leaves) + 1, dtype=np.int64)
        np.cumsum([len(leaf) for leaf in self._leaves], out=self._leaf_offsets[1:])
        # Internal levels: level[i] holds the smallest key under child i.
        self._levels: list[np.ndarray] = []
        current = np.array(
            [int(leaf[0]) if len(leaf) else 0 for leaf in self._leaves],
            dtype=np.int64,
        )
        while len(current) > 1:
            self._levels.append(current)
            current = current[::per_leaf].copy()
        self._n = int(self._leaf_offsets[-1])

    def __len__(self) -> int:
        return self._n

    @property
    def height(self) -> int:
        """Number of internal levels above the leaves."""
        return len(self._levels)

    def seek(self, key: int) -> int:
        """Global position of the first key ``>= key`` (may be ``n``)."""
        if self._n == 0:
            return 0
        # The first key >= probe lives either in the leaf just before the
        # first fence >= probe (duplicates may span leaves) or at that
        # fence's own leaf.
        fences = self._levels[0] if self._levels else None
        if fences is None:
            leaf_idx = 0
        else:
            leaf_idx = max(int(np.searchsorted(fences, key, side="left")) - 1, 0)
        pos = int(np.searchsorted(self._leaves[leaf_idx], key, side="left"))
        return int(self._leaf_offsets[leaf_idx]) + pos

    def get(self, i: int) -> int:
        """Key at global position ``i``."""
        if not 0 <= i < self._n:
            raise IndexError(f"position {i} out of range [0, {self._n})")
        leaf_idx = int(np.searchsorted(self._leaf_offsets, i, side="right")) - 1
        return int(self._leaves[leaf_idx][i - int(self._leaf_offsets[leaf_idx])])

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Keys at global positions ``[lo, hi)``."""
        lo = max(lo, 0)
        hi = min(hi, self._n)
        leaf_idx = int(np.searchsorted(self._leaf_offsets, lo, side="right")) - 1
        pos = lo
        while pos < hi:
            leaf = self._leaves[leaf_idx]
            start = pos - int(self._leaf_offsets[leaf_idx])
            stop = min(len(leaf), start + (hi - pos))
            for k in leaf[start:stop]:
                yield int(k)
            pos += stop - start
            leaf_idx += 1

    def size_in_bits(self) -> int:
        """Leaf capacity (allocated, not just used), internal separator
        keys, child pointers and per-node headers."""
        per_leaf_capacity = self._fanout
        leaf_bits = len(self._leaves) * (per_leaf_capacity * 64 + 128)
        internal_bits = sum(len(level) * (64 + 64) for level in self._levels)
        return leaf_bits + internal_bits + 256


class BTreeOrder:
    """One attribute permutation indexed in a B+tree.

    Mirrors :class:`~repro.baselines.sorted_orders.SortedOrder`'s API so
    it can back :class:`~repro.baselines.sorted_orders.OrderSet`.
    """

    def __init__(self, graph: Graph, perm: Sequence[int], fanout: int = DEFAULT_FANOUT) -> None:
        self.perm = tuple(perm)
        sizes = [
            graph.n_nodes if attr != P else graph.n_predicates for attr in perm
        ]
        self._sizes = tuple(int(max(s, 1)) for s in sizes)
        self._strides = (
            self._sizes[1] * self._sizes[2],
            self._sizes[2],
            1,
        )
        cols = [graph.triples[:, attr].astype(np.int64) for attr in perm]
        keys = np.sort(
            cols[0] * self._strides[0] + cols[1] * self._strides[1] + cols[2]
        )
        self._tree = BPlusTree(keys, fanout)
        self._n = len(keys)

    @property
    def n(self) -> int:
        return self._n

    def size(self, depth: int) -> int:
        return self._sizes[depth]

    def _prefix_key(self, values: Sequence[int]) -> int:
        key = 0
        for depth, v in enumerate(values):
            key += int(v) * self._strides[depth]
        return key

    def prefix_range(self, values: Sequence[int]) -> tuple[int, int]:
        depth = len(values)
        if depth == 0:
            return 0, self._n
        if any(not 0 <= v < self._sizes[d] for d, v in enumerate(values)):
            return 0, 0  # value outside this attribute's universe
        lo_key = self._prefix_key(values)
        hi_key = lo_key + self._strides[depth - 1]
        return self._tree.seek(lo_key), self._tree.seek(hi_key)

    def leap_in_range(
        self, values: Sequence[int], lo: int, hi: int, c: int
    ) -> Optional[int]:
        depth = len(values)
        if c >= self._sizes[depth]:
            return None
        probe = self._prefix_key(values) + c * self._strides[depth]
        pos = self._tree.seek(probe)
        if pos >= hi:
            return None
        return (self._tree.get(pos) // self._strides[depth]) % self._sizes[depth]

    def decode(self, row: int) -> tuple[int, int, int]:
        key = self._tree.get(row)
        out = [0, 0, 0]
        for depth, attr in enumerate(self.perm):
            out[attr] = (key // self._strides[depth]) % self._sizes[depth]
        return tuple(out)

    def scan(self, values: Sequence[int]) -> Iterator[tuple[int, int, int]]:
        lo, hi = self.prefix_range(values)
        for key in self._tree.iter_range(lo, hi):
            out = [0, 0, 0]
            for depth, attr in enumerate(self.perm):
                out[attr] = (key // self._strides[depth]) % self._sizes[depth]
            yield tuple(out)

    def size_in_bits(self) -> int:
        return self._tree.size_in_bits()
