"""Virtuoso regime: predicate-oriented column index + hash joins.

Virtuoso (§5.1) keeps "a column-wise index of quads … with two full
orders (psog, posg)" — i.e. everything is organised *predicate first* —
"and three partial indexes … optimised for patterns with constant
predicates", joining pairwise with nested-loop and hash joins.

Dropping the graph attribute (we store triples), this becomes: for every
predicate, a column pair sorted by ``(s, o)`` and one sorted by
``(o, s)``.  Patterns with a constant predicate are fast; patterns with a
variable predicate must loop over every predicate partition — the exact
weakness the paper's Table 2 workload (51.5 % constant-predicate but also
6.7 % ``(?, ?, ?)`` patterns) pokes at.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.baselines.pairwise import PairwiseJoinEngine, PairwiseSystemMixin
from repro.core.interface import pattern_constants
from repro.core.system import BaseQuerySystem
from repro.graph.dataset import Graph
from repro.graph.model import O, P, S, TriplePattern


class _PredicatePartition:
    """Column pairs of one predicate: (s,o)-sorted and (o,s)-sorted."""

    def __init__(self, so: np.ndarray) -> None:
        # so: (m, 2) array of subject, object.
        order_so = np.lexsort((so[:, 1], so[:, 0]))
        self.s_col = so[order_so, 0].copy()
        self.o_col = so[order_so, 1].copy()
        order_os = np.lexsort((so[:, 0], so[:, 1]))
        self.o_col2 = so[order_os, 1].copy()
        self.s_col2 = so[order_os, 0].copy()

    def scan(self, s: int | None, o: int | None) -> Iterator[tuple[int, int]]:
        if s is not None:
            lo = int(np.searchsorted(self.s_col, s, "left"))
            hi = int(np.searchsorted(self.s_col, s, "right"))
            for i in range(lo, hi):
                if o is None or self.o_col[i] == o:
                    yield int(self.s_col[i]), int(self.o_col[i])
        elif o is not None:
            lo = int(np.searchsorted(self.o_col2, o, "left"))
            hi = int(np.searchsorted(self.o_col2, o, "right"))
            for i in range(lo, hi):
                yield int(self.s_col2[i]), int(self.o_col2[i])
        else:
            for i in range(len(self.s_col)):
                yield int(self.s_col[i]), int(self.o_col[i])

    def estimate(self, s: int | None, o: int | None) -> int:
        if s is not None and o is not None:
            return 1
        if s is not None:
            return int(
                np.searchsorted(self.s_col, s, "right")
                - np.searchsorted(self.s_col, s, "left")
            )
        if o is not None:
            return int(
                np.searchsorted(self.o_col2, o, "right")
                - np.searchsorted(self.o_col2, o, "left")
            )
        return len(self.s_col)

    def size_in_bits(self) -> int:
        # Four 32-bit columns (Virtuoso's column store packs to words).
        return 4 * 32 * len(self.s_col) + 128


class _VirtuosoScanProvider:
    def __init__(self, partitions: dict[int, _PredicatePartition], n: int) -> None:
        self._partitions = partitions
        self._n = n

    def _parts(self, constants: dict[int, int]):
        if P in constants:
            part = self._partitions.get(constants[P])
            return [] if part is None else [(constants[P], part)]
        return sorted(self._partitions.items())

    def scan_pattern(self, pattern: TriplePattern):
        constants = pattern_constants(pattern)
        s = constants.get(S)
        o = constants.get(O)
        for p, part in self._parts(constants):
            for sv, ov in part.scan(s, o):
                yield (sv, p, ov)

    def estimate_pattern(self, pattern: TriplePattern) -> int:
        constants = pattern_constants(pattern)
        s = constants.get(S)
        o = constants.get(O)
        return sum(part.estimate(s, o) for _, part in self._parts(constants))


class VirtuosoIndex(PairwiseSystemMixin, BaseQuerySystem):
    """Predicate-partitioned columns, pairwise hash joins (non-wco)."""

    name = "Virtuoso"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        partitions: dict[int, _PredicatePartition] = {}
        t = graph.triples
        for p in np.unique(t[:, P]) if len(t) else []:
            rows = t[t[:, P] == p]
            partitions[int(p)] = _PredicatePartition(rows[:, [S, O]])
        self._partitions = partitions
        self._engine = PairwiseJoinEngine(
            _VirtuosoScanProvider(partitions, graph.n_triples), method="hash"
        )

    def size_in_bits(self) -> int:
        return sum(p.size_in_bits() for p in self._partitions.values()) + 256
