"""Sorted permutation orders: the "flat" indexing scheme of Figure 2.

A :class:`SortedOrder` stores the triples lexicographically sorted by one
permutation of ``(s, p, o)`` as a single composite-key array, supporting
``O(log n)`` prefix-range narrowing and in-range leaps via binary search.
Six of them give the classical complete wco index; they also provide the
scan primitives the pairwise-join baselines use.

:class:`OrderSetIterator` implements the LTJ
:class:`~repro.core.interface.PatternIterator` protocol on top of a set
of orders, picking per leap the order whose prefix covers the bound
positions — the textbook trie-iterator of Veldhuizen.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.interface import first_candidate, pattern_constants
from repro.graph.dataset import Graph
from repro.graph.model import O, P, S, TriplePattern, Var

ALL_ORDERS: tuple[tuple[int, int, int], ...] = tuple(permutations((S, P, O)))
ORDER_NAMES = {perm: "".join("spo"[a] for a in perm) for perm in ALL_ORDERS}


class SortedOrder:
    """Triples sorted by one attribute permutation, as composite keys."""

    def __init__(self, graph: Graph, perm: Sequence[int]) -> None:
        self.perm = tuple(perm)
        sizes = [
            graph.n_nodes if attr != P else graph.n_predicates for attr in perm
        ]
        self._sizes = tuple(int(max(s, 1)) for s in sizes)
        self._strides = (
            self._sizes[1] * self._sizes[2],
            self._sizes[2],
            1,
        )
        cols = [graph.triples[:, attr].astype(np.int64) for attr in perm]
        keys = (
            cols[0] * self._strides[0]
            + cols[1] * self._strides[1]
            + cols[2]
        )
        self._keys = np.sort(keys)
        self._n = len(self._keys)

    @property
    def n(self) -> int:
        return self._n

    def size(self, depth: int) -> int:
        """Universe of the attribute at trie depth ``depth``."""
        return self._sizes[depth]

    def _prefix_key(self, values: Sequence[int]) -> int:
        key = 0
        for depth, v in enumerate(values):
            key += int(v) * self._strides[depth]
        return key

    def prefix_range(self, values: Sequence[int]) -> tuple[int, int]:
        """Row range ``[lo, hi)`` of triples starting with ``values``."""
        depth = len(values)
        if depth == 0:
            return 0, self._n
        if any(not 0 <= v < self._sizes[d] for d, v in enumerate(values)):
            return 0, 0  # value outside this attribute's universe
        lo_key = self._prefix_key(values)
        hi_key = lo_key + self._strides[depth - 1]
        lo = int(np.searchsorted(self._keys, lo_key, side="left"))
        hi = int(np.searchsorted(self._keys, hi_key, side="left"))
        return lo, hi

    def leap_in_range(
        self, values: Sequence[int], lo: int, hi: int, c: int
    ) -> Optional[int]:
        """Smallest value ``>= c`` at depth ``len(values)`` within the
        prefix range ``[lo, hi)``."""
        depth = len(values)
        if c >= self._sizes[depth]:
            return None
        probe = self._prefix_key(values) + c * self._strides[depth]
        pos = int(np.searchsorted(self._keys, probe, side="left"))
        if pos >= hi:
            return None
        return int(self._keys[pos] // self._strides[depth]) % self._sizes[depth]

    def decode(self, row: int) -> tuple[int, int, int]:
        """Triple (in s, p, o position order) stored at ``row``."""
        key = int(self._keys[row])
        out = [0, 0, 0]
        for depth, attr in enumerate(self.perm):
            out[attr] = (key // self._strides[depth]) % self._sizes[depth]
        return tuple(out)

    def scan(self, values: Sequence[int]) -> Iterator[tuple[int, int, int]]:
        """All triples whose order-prefix equals ``values``."""
        lo, hi = self.prefix_range(values)
        for row in range(lo, hi):
            yield self.decode(row)

    def size_in_bits(self) -> int:
        return 64 * self._n + 256


class OrderSet:
    """A collection of sorted orders with per-(bound-set, target) lookup.

    ``order_factory`` lets the B+tree baselines substitute their own
    order implementation while reusing the iterator logic.
    """

    def __init__(
        self,
        graph: Graph,
        perms: Iterable[Sequence[int]],
        order_factory=SortedOrder,
    ) -> None:
        self._orders = {tuple(p): order_factory(graph, p) for p in perms}
        self._n = graph.n_triples

    @property
    def n(self) -> int:
        return self._n

    @property
    def orders(self) -> dict[tuple[int, int, int], SortedOrder]:
        return self._orders

    def order_for(
        self, bound: frozenset[int], target: int
    ) -> Optional[tuple[SortedOrder, tuple[int, ...]]]:
        """An order whose first ``len(bound)`` attributes are ``bound`` and
        whose next attribute is ``target``; returns it with its prefix."""
        for perm, order in self._orders.items():
            k = len(bound)
            if set(perm[:k]) == bound and perm[k] == target:
                return order, perm[:k]
        return None

    def size_in_bits(self) -> int:
        return sum(o.size_in_bits() for o in self._orders.values())


class OrderSetIterator:
    """LTJ trie-iterator over a set of sorted orders (flat scheme)."""

    def __init__(self, orders: OrderSet, pattern: TriplePattern) -> None:
        self._orders = orders
        self._pattern = pattern
        self._constants = pattern_constants(pattern)
        self._var_positions = {
            var: tuple(pattern.variable_positions(var))
            for var in pattern.variables()
        }
        self._stack: list[tuple[Var, tuple[int, ...]]] = []

    @property
    def pattern(self) -> TriplePattern:
        return self._pattern

    def _lookup(
        self, target: int
    ) -> Optional[tuple[SortedOrder, Sequence[int], int, int]]:
        bound = frozenset(self._constants)
        found = self._orders.order_for(bound, target)
        if found is None:
            return None
        order, prefix_attrs = found
        values = [self._constants[a] for a in prefix_attrs]
        lo, hi = order.prefix_range(values)
        return order, values, lo, hi

    def count(self) -> int:
        bound = frozenset(self._constants)
        if len(bound) == 3:
            order = next(iter(self._orders.orders.values()))
            values = [self._constants[a] for a in order.perm]
            lo, hi = order.prefix_range(values)
            return hi - lo
        target = next(a for a in (S, P, O) if a not in bound)
        found = self._lookup(target)
        if found is None:  # incomplete order set; conservative estimate
            return self._orders.n
        _, _, lo, hi = found
        return hi - lo

    def leap(self, var: Var, c: int) -> Optional[int]:
        positions = self._var_positions[var]
        if len(positions) == 1:
            found = self._lookup(positions[0])
            if found is None:
                raise LookupError(
                    f"no order covers bound={sorted(self._constants)} "
                    f"target={positions[0]}"
                )
            order, values, lo, hi = found
            return order.leap_in_range(values, lo, hi, c)
        # Repeated variable: candidates from the first position, verified
        # by requiring a fully-consistent prefix range.  A value must fit
        # every universe it occupies.
        any_order = next(iter(self._orders.orders.values()))
        ceiling = min(
            any_order.size(any_order.perm.index(pos)) for pos in positions
        )
        while True:
            candidate = self._probe(positions[0], c)
            if candidate is None or candidate >= ceiling:
                return None
            trial = dict(self._constants)
            for pos in positions:
                trial[pos] = candidate
            if self._count_constants(trial) > 0:
                return candidate
            c = candidate + 1

    def _probe(self, pos: int, c: int) -> Optional[int]:
        found = self._lookup(pos)
        if found is None:
            raise LookupError("no order covers probe")
        order, values, lo, hi = found
        return order.leap_in_range(values, lo, hi, c)

    def _count_constants(self, constants: dict[int, int]) -> int:
        # Use any order whose prefix covers the constants; with all six
        # available a full match always exists.
        bound = frozenset(constants)
        for perm, order in self._orders.orders.items():
            if set(perm[: len(bound)]) == bound:
                values = [constants[a] for a in perm[: len(bound)]]
                lo, hi = order.prefix_range(values)
                return hi - lo
        raise LookupError("no covering order")

    def bind(self, var: Var, value: int) -> None:
        positions = self._var_positions[var]
        self._stack.append((var, positions))
        for pos in positions:
            self._constants[pos] = value

    def unbind(self, var: Var) -> None:
        if not self._stack or self._stack[-1][0] != var:
            raise ValueError("unbind order violation")
        _, positions = self._stack.pop()
        for pos in positions:
            del self._constants[pos]

    def values(self, var: Var) -> Iterator[int]:
        c = 0
        while True:
            value = self.leap(var, c)
            if value is None:
                return
            yield value
            c = value + 1

    def preferred_lonely(self, candidates: Iterable[Var]) -> Var:
        return first_candidate(candidates)
