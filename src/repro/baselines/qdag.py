"""Qdag regime: succinct quadtree (k²-tree) worst-case-optimal joins.

Navarro, Reutter & Rojas's Qdags (§2.2.4, §5.1) are the paper's only
succinct wco competitor: each binary relation is a k²-tree (a quadtree
whose levels are bitvectors, 4 bits per non-empty node), and a join over
variables ``x1..xv`` is evaluated by a synchronised descent over the
``v``-dimensional grid — at every level each variable's range halves,
producing ``2^v`` sub-cells, and a sub-cell survives only if *every*
pattern's quadtree has the matching child.  Output is wco with the extra
``O(2^v)`` factor the paper highlights ("an encoding that grows
exponentially with the number of nodes in patterns"), which is why Qdag
wins on 3-variable patterns and degrades on the larger acyclic ones.

Faithfully to footnote 6 of the paper, constants are supported only in
the predicate position ("we use a Qdag to index one binary relation per
predicate"); anything else raises :class:`UnsupportedQueryError`, which
is how the harness reproduces Qdag's exclusion from Table 2.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.bits.bitvector import BitVector
from repro.core.interface import UnsupportedQueryError
from repro.core.system import BaseQuerySystem
from repro.graph.dataset import Graph
from repro.graph.model import BasicGraphPattern, P, Var
from repro.reliability.budget import ResourceBudget

__all__ = ["K2Tree", "QdagIndex", "UnsupportedQueryError"]


class K2Tree:
    """A static k²-tree (k = 2) over points in ``[0, 2^height)²``."""

    def __init__(self, points: np.ndarray, height: int) -> None:
        pts = np.asarray(points, dtype=np.int64).reshape(-1, 2)
        if height < 1:
            raise ValueError("height must be >= 1")
        side = 1 << height
        if len(pts) and (pts.min() < 0 or pts.max() >= side):
            raise ValueError("point outside the grid")
        self.height = height
        self.n_points = len(np.unique(pts, axis=0)) if len(pts) else 0
        codes = self._morton(pts[:, 0], pts[:, 1], height)
        codes = np.unique(codes)
        self._levels: list[BitVector] = []
        for depth in range(height):
            parents = np.unique(codes >> 2 * (height - depth)) if len(codes) else (
                np.zeros(0, dtype=np.int64)
            )
            if depth == 0:
                parents = np.zeros(1, dtype=np.int64)  # the root, even if empty
            children = np.unique(codes >> 2 * (height - depth - 1)) if len(
                codes
            ) else np.zeros(0, dtype=np.int64)
            bits = np.zeros(4 * len(parents), dtype=bool)
            if len(children):
                parent_of = children >> 2
                quadrant = children & 3
                idx = np.searchsorted(parents, parent_of)
                bits[4 * idx + quadrant] = True
            self._levels.append(BitVector.from_bool_array(bits))

    @staticmethod
    def _morton(s: np.ndarray, o: np.ndarray, height: int) -> np.ndarray:
        codes = np.zeros(len(s), dtype=np.int64)
        for level in range(height):
            shift = height - 1 - level
            quadrant = 2 * ((s >> shift) & 1) + ((o >> shift) & 1)
            codes = (codes << 2) | quadrant
        return codes

    def child(self, depth: int, node: int, quadrant: int) -> Optional[int]:
        """Index at ``depth + 1`` of the node's quadrant child, or ``None``.

        ``depth`` 0 is the root; at ``depth == height - 1`` the returned
        index identifies a *cell* (presence only).
        """
        bv = self._levels[depth]
        pos = 4 * node + quadrant
        if not bv[pos]:
            return None
        return bv.rank1(pos)

    def is_empty(self) -> bool:
        return self.n_points == 0

    def contains(self, s: int, o: int) -> bool:
        node = 0
        for depth in range(self.height):
            shift = self.height - 1 - depth
            quadrant = 2 * ((s >> shift) & 1) + ((o >> shift) & 1)
            child = self.child(depth, node, quadrant)
            if child is None:
                return False
            node = child
        return True

    def size_in_bits(self) -> int:
        return sum(bv.size_in_bits() for bv in self._levels) + 128


class QdagIndex(BaseQuerySystem):
    """One k²-tree per predicate; multiway quadtree join over BGPs."""

    name = "Qdag"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._height = max(1, (max(graph.n_nodes - 1, 1)).bit_length())
        self._trees: dict[int, K2Tree] = {}
        t = graph.triples
        for p in (np.unique(t[:, P]) if len(t) else []):
            rows = t[t[:, P] == p]
            self._trees[int(p)] = K2Tree(rows[:, [0, 2]], self._height)

    def _solutions(
        self,
        bgp: BasicGraphPattern,
        timeout: Optional[float],
        **options,
    ) -> Iterable[dict[Var, int]]:
        deadline = ResourceBudget.coerce(timeout)
        variables: list[Var] = []
        tasks: list[tuple[K2Tree, int, int]] = []  # (tree, dim_s, dim_o)
        for pattern in bgp:
            s, p, o = pattern.terms
            if isinstance(p, Var) or not isinstance(s, Var) or not isinstance(o, Var):
                raise UnsupportedQueryError(
                    "Qdag supports only (?s, p, ?o) patterns with constant "
                    "predicates (paper §5.1, footnote 6)"
                )
            if s == o:
                raise UnsupportedQueryError(
                    "Qdag does not support repeated variables in one pattern"
                )
            tree = self._trees.get(p)
            if tree is None or tree.is_empty():
                return
            for var in (s, o):
                if var not in variables:
                    variables.append(var)
            tasks.append((tree, variables.index(s), variables.index(o)))
        v = len(variables)
        yield from self._descend(
            tasks,
            [0] * len(tasks),
            [0] * v,
            0,
            variables,
            deadline,
            [0],
        )

    def _descend(
        self,
        tasks: list[tuple[K2Tree, int, int]],
        nodes: list[int],
        values: list[int],
        depth: int,
        variables: list[Var],
        deadline: ResourceBudget,
        counter: list[int],
    ) -> Iterator[dict[Var, int]]:
        if depth == self._height:
            yield {
                var: values[i] for i, var in enumerate(variables)
            }
            return
        v = len(values)
        for combo in range(1 << v):
            counter[0] += 1
            deadline.tick()
            bits = [(combo >> (v - 1 - i)) & 1 for i in range(v)]
            children = []
            alive = True
            for (tree, ds, do), node in zip(tasks, nodes):
                quadrant = 2 * bits[ds] + bits[do]
                child = tree.child(depth, node, quadrant)
                if child is None:
                    alive = False
                    break
                children.append(child)
            if not alive:
                continue
            next_values = [
                (values[i] << 1) | bits[i] for i in range(v)
            ]
            yield from self._descend(
                tasks, children, next_values, depth + 1, variables, deadline, counter
            )

    def size_in_bits(self) -> int:
        return sum(t.size_in_bits() for t in self._trees.values()) + 256
