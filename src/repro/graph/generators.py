"""Synthetic graph generators standing in for the paper's Wikidata data.

The paper indexes (a) an 81.4 M-triple Wikidata sub-graph for WGPB and
(b) the full 958.8 M-triple Wikidata graph.  Neither is available here
(nor tractable in pure Python), so we synthesise graphs that preserve the
statistics WGPB behaviour depends on:

- a small predicate universe versus a large node universe
  (Wikidata sub-graph: 2 101 predicates vs 52.0 M nodes);
- Zipf-skewed predicate frequencies (a few hub predicates dominate);
- Zipf-skewed node degrees (hub entities), with most nodes of low degree;
- enough connectivity that random walks can instantiate the 17 WGPB
  shapes with non-empty answers.

Determinism: every generator takes a ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dataset import Graph

#: The 13-triple graph of the paper's Figure 3 (Nobel laureates).
NOBEL_TRIPLES = [
    ("Bohr", "adv", "Thomson"),
    ("Thomson", "adv", "Strutt"),
    ("Thorne", "adv", "Wheeler"),
    ("Wheeler", "adv", "Bohr"),
    ("Nobel", "nom", "Bohr"),
    ("Nobel", "nom", "Strutt"),
    ("Nobel", "nom", "Thomson"),
    ("Nobel", "nom", "Thorne"),
    ("Nobel", "nom", "Wheeler"),
    ("Nobel", "win", "Bohr"),
    ("Nobel", "win", "Strutt"),
    ("Nobel", "win", "Thomson"),
    ("Nobel", "win", "Thorne"),
]


def nobel_graph() -> Graph:
    """The running example of the paper (Figure 3)."""
    return Graph.from_string_triples(NOBEL_TRIPLES)


def _zipf_choice(
    rng: np.random.Generator, n: int, size: int, exponent: float
) -> np.ndarray:
    """Sample ``size`` values from ``[0, n)`` with Zipf-like skew."""
    weights = 1.0 / np.arange(1, n + 1) ** exponent
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def wikidata_like(
    n_triples: int = 20_000,
    n_nodes: int | None = None,
    n_predicates: int | None = None,
    predicate_exponent: float = 1.1,
    node_exponent: float = 0.8,
    seed: int = 0,
) -> Graph:
    """A Wikidata-shaped random graph.

    Defaults mirror the WGPB sub-graph's proportions: roughly one node
    per 1.6 triples and one predicate per 39 000 triples (with floors so
    small graphs stay interesting).
    """
    if n_nodes is None:
        n_nodes = max(16, int(n_triples * 0.6))
    if n_predicates is None:
        n_predicates = max(8, n_triples // 2_000)
    rng = np.random.default_rng(seed)
    # Oversample: deduplication loses some rows.
    factor = 1.3
    triples = None
    while True:
        m = int(n_triples * factor)
        s = _zipf_choice(rng, n_nodes, m, node_exponent)
        p = _zipf_choice(rng, n_predicates, m, predicate_exponent)
        o = _zipf_choice(rng, n_nodes, m, node_exponent)
        cand = np.unique(np.stack([s, p, o], axis=1), axis=0)
        if len(cand) >= n_triples:
            pick = rng.choice(len(cand), size=n_triples, replace=False)
            triples = cand[pick]
            break
        factor *= 1.5
    return Graph(triples, n_nodes=n_nodes, n_predicates=n_predicates)


def path_graph(length: int, predicate_id: int = 0) -> Graph:
    """A simple directed path ``0 -> 1 -> … -> length`` (tests/examples)."""
    s = np.arange(length, dtype=np.int64)
    triples = np.stack(
        [s, np.full(length, predicate_id, dtype=np.int64), s + 1], axis=1
    )
    return Graph(triples, n_nodes=length + 1, n_predicates=predicate_id + 1)


def clique_graph(k: int, predicate_id: int = 0) -> Graph:
    """A directed clique on ``k`` nodes (worst-case join fodder)."""
    s, o = np.meshgrid(np.arange(k), np.arange(k))
    mask = s != o
    triples = np.stack(
        [
            s[mask].astype(np.int64),
            np.full(int(mask.sum()), predicate_id, dtype=np.int64),
            o[mask].astype(np.int64),
        ],
        axis=1,
    )
    return Graph(triples, n_nodes=k, n_predicates=predicate_id + 1)


def random_graph(
    n_triples: int, n_nodes: int, n_predicates: int, seed: int = 0
) -> Graph:
    """Uniform random graph (no skew); handy for property tests."""
    rng = np.random.default_rng(seed)
    capacity = n_nodes * n_nodes * n_predicates
    n_triples = min(n_triples, capacity)
    seen: set[tuple[int, int, int]] = set()
    while len(seen) < n_triples:
        missing = n_triples - len(seen)
        s = rng.integers(0, n_nodes, missing * 2 + 4)
        p = rng.integers(0, n_predicates, missing * 2 + 4)
        o = rng.integers(0, n_nodes, missing * 2 + 4)
        for row in zip(s.tolist(), p.tolist(), o.tolist()):
            seen.add(row)
            if len(seen) == n_triples:
                break
    triples = np.array(sorted(seen), dtype=np.int64)
    return Graph(triples, n_nodes=n_nodes, n_predicates=n_predicates)
