"""Synthetic graph generators standing in for the paper's Wikidata data.

The paper indexes (a) an 81.4 M-triple Wikidata sub-graph for WGPB and
(b) the full 958.8 M-triple Wikidata graph.  Neither is available here
(nor tractable in pure Python), so we synthesise graphs that preserve the
statistics WGPB behaviour depends on:

- a small predicate universe versus a large node universe
  (Wikidata sub-graph: 2 101 predicates vs 52.0 M nodes);
- Zipf-skewed predicate frequencies (a few hub predicates dominate);
- Zipf-skewed node degrees (hub entities), with most nodes of low degree;
- enough connectivity that random walks can instantiate the 17 WGPB
  shapes with non-empty answers.

Determinism: every generator takes a ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dataset import Graph

#: The 13-triple graph of the paper's Figure 3 (Nobel laureates).
NOBEL_TRIPLES = [
    ("Bohr", "adv", "Thomson"),
    ("Thomson", "adv", "Strutt"),
    ("Thorne", "adv", "Wheeler"),
    ("Wheeler", "adv", "Bohr"),
    ("Nobel", "nom", "Bohr"),
    ("Nobel", "nom", "Strutt"),
    ("Nobel", "nom", "Thomson"),
    ("Nobel", "nom", "Thorne"),
    ("Nobel", "nom", "Wheeler"),
    ("Nobel", "win", "Bohr"),
    ("Nobel", "win", "Strutt"),
    ("Nobel", "win", "Thomson"),
    ("Nobel", "win", "Thorne"),
]


def nobel_graph() -> Graph:
    """The running example of the paper (Figure 3)."""
    return Graph.from_string_triples(NOBEL_TRIPLES)


def _zipf_choice(
    rng: np.random.Generator, n: int, size: int, exponent: float
) -> np.ndarray:
    """Sample ``size`` values from ``[0, n)`` with Zipf-like skew."""
    weights = 1.0 / np.arange(1, n + 1) ** exponent
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def wikidata_like(
    n_triples: int = 20_000,
    n_nodes: int | None = None,
    n_predicates: int | None = None,
    predicate_exponent: float = 1.1,
    node_exponent: float = 0.8,
    seed: int = 0,
) -> Graph:
    """A Wikidata-shaped random graph.

    Defaults mirror the WGPB sub-graph's proportions: roughly one node
    per 1.6 triples and one predicate per 39 000 triples (with floors so
    small graphs stay interesting).
    """
    if n_nodes is None:
        n_nodes = max(16, int(n_triples * 0.6))
    if n_predicates is None:
        n_predicates = max(8, n_triples // 2_000)
    rng = np.random.default_rng(seed)
    # Oversample: deduplication loses some rows.
    factor = 1.3
    triples = None
    while True:
        m = int(n_triples * factor)
        s = _zipf_choice(rng, n_nodes, m, node_exponent)
        p = _zipf_choice(rng, n_predicates, m, predicate_exponent)
        o = _zipf_choice(rng, n_nodes, m, node_exponent)
        cand = np.unique(np.stack([s, p, o], axis=1), axis=0)
        if len(cand) >= n_triples:
            pick = rng.choice(len(cand), size=n_triples, replace=False)
            triples = cand[pick]
            break
        factor *= 1.5
    return Graph(triples, n_nodes=n_nodes, n_predicates=n_predicates)


def skewed_graph(
    n_hubs: int = 64,
    fan: int = 32,
    decoys: int = 4,
    noise: int = 0,
    predicate_exponent: float = 1.2,
    n_noise_predicates: int = 3,
    seed: int = 0,
) -> Graph:
    """A star/hub graph on which one global elimination order is always
    pathological — the gate workload for the adaptive planning policies.

    Structure (predicates ``0``/``1``/``2`` plus optional Zipf noise):

    - ``n_hubs`` hub subjects, each with a *left* wing (``p0`` edges to
      the left pool) and a *right* wing (``p1`` edges to the right
      pool); wing sizes alternate per hub — even hubs fan ``fan``-wide
      on the left and 1-wide on the right, odd hubs the reverse;
    - ``p2`` links left-pool nodes to right-pool nodes: per hub exactly
      one fan member links to the hub's narrow-wing node (so the join
      has answers and cannot be cut off early), and *every* left node
      carries ``decoys`` extra ``p2`` edges to a decoy pool, keeping
      fan branches alive through the ``p2`` intersection until the
      final variable kills them;
    - ``noise`` extra triples under ``n_noise_predicates`` further
      predicates with Zipf-skewed frequencies (hub-biased subjects), so
      predicate statistics look Wikidata-like rather than hand-built.

    On ``?s p0 ?a . ?s p1 ?b . ?a p2 ?b`` a static order must commit to
    eliminating ``?a`` before ``?b`` (or vice versa) for every hub, and
    pays the ``fan``-wide wing on the half of the hubs where that side
    is wide; the ``adaptive`` policy reads the collapsed wing's O(1)
    range width after binding ``?s`` and always eliminates the narrow
    side first.  Deterministic for a given ``seed``.
    """
    if n_hubs < 2 or fan < 2:
        raise ValueError("need n_hubs >= 2 and fan >= 2")
    rng = np.random.default_rng(seed)
    triples: list[tuple[int, int, int]] = []
    next_id = n_hubs

    def fresh(k: int) -> list[int]:
        nonlocal next_id
        ids = list(range(next_id, next_id + k))
        next_id += k
        return ids

    decoy_pool = fresh(max(decoys * 2, 4))
    for hub in range(n_hubs):
        wide, narrow = fresh(fan), fresh(1)
        if hub % 2 == 0:  # left-heavy: wide ?a wing, single ?b
            lefts, rights = wide, narrow
        else:  # right-heavy: single ?a, wide ?b wing
            lefts, rights = narrow, wide
        for a in lefts:
            triples.append((hub, 0, a))
        for b in rights:
            triples.append((hub, 1, b))
        # One matching p2 link per hub (non-empty join), decoys for all.
        a_hit = lefts[int(rng.integers(len(lefts)))]
        b_hit = rights[int(rng.integers(len(rights)))]
        triples.append((a_hit, 2, b_hit))
        for a in lefts:
            for d in rng.choice(decoy_pool, size=decoys, replace=False):
                triples.append((a, 2, int(d)))
    n_predicates = 3 + (n_noise_predicates if noise else 0)
    if noise:
        n_nodes_so_far = next_id
        s = _zipf_choice(rng, n_nodes_so_far, noise, 1.0)
        p = 3 + _zipf_choice(rng, n_noise_predicates, noise, predicate_exponent)
        o = _zipf_choice(rng, n_nodes_so_far, noise, 1.0)
        triples.extend(zip(s.tolist(), p.tolist(), o.tolist()))
    arr = np.unique(np.array(triples, dtype=np.int64), axis=0)
    return Graph(arr, n_nodes=next_id, n_predicates=n_predicates)


def path_graph(length: int, predicate_id: int = 0) -> Graph:
    """A simple directed path ``0 -> 1 -> … -> length`` (tests/examples)."""
    s = np.arange(length, dtype=np.int64)
    triples = np.stack(
        [s, np.full(length, predicate_id, dtype=np.int64), s + 1], axis=1
    )
    return Graph(triples, n_nodes=length + 1, n_predicates=predicate_id + 1)


def clique_graph(k: int, predicate_id: int = 0) -> Graph:
    """A directed clique on ``k`` nodes (worst-case join fodder)."""
    s, o = np.meshgrid(np.arange(k), np.arange(k))
    mask = s != o
    triples = np.stack(
        [
            s[mask].astype(np.int64),
            np.full(int(mask.sum()), predicate_id, dtype=np.int64),
            o[mask].astype(np.int64),
        ],
        axis=1,
    )
    return Graph(triples, n_nodes=k, n_predicates=predicate_id + 1)


def random_graph(
    n_triples: int, n_nodes: int, n_predicates: int, seed: int = 0
) -> Graph:
    """Uniform random graph (no skew); handy for property tests."""
    rng = np.random.default_rng(seed)
    capacity = n_nodes * n_nodes * n_predicates
    n_triples = min(n_triples, capacity)
    seen: set[tuple[int, int, int]] = set()
    while len(seen) < n_triples:
        missing = n_triples - len(seen)
        s = rng.integers(0, n_nodes, missing * 2 + 4)
        p = rng.integers(0, n_predicates, missing * 2 + 4)
        o = rng.integers(0, n_nodes, missing * 2 + 4)
        for row in zip(s.tolist(), p.tolist(), o.tolist()):
            seen.add(row)
            if len(seen) == n_triples:
                break
    triples = np.array(sorted(seen), dtype=np.int64)
    return Graph(triples, n_nodes=n_nodes, n_predicates=n_predicates)
