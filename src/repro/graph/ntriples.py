"""A pragmatic N-Triples subset loader.

Wikidata and most RDF corpora ship as N-Triples; this parses the subset
that matters for graph-pattern workloads:

- IRIs: ``<http://…>``;
- literals: ``"text"`` with ``\\"``/``\\\\``/``\\n``/``\\t`` escapes,
  optional ``@lang`` tag or ``^^<datatype>`` suffix (kept as part of the
  label, as triple stores do for dictionary purposes);
- blank nodes: ``_:name``;
- comments (``#`` lines) and blank lines;
- the terminating ``.``.

Everything becomes a plain label string in the
:class:`~repro.graph.Dictionary`; the ring does not care what the label
looks like.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.dataset import Graph


class NTriplesError(ValueError):
    """Malformed N-Triples input.

    Carries structured context for diagnostics: ``source`` (file name),
    ``line_no`` and ``text`` (the offending line) when known — all
    folded into the message as ``file: line N: reason: 'text'``.
    """

    def __init__(
        self,
        message: str,
        source: str | None = None,
        line_no: int | None = None,
        text: str | None = None,
    ) -> None:
        self.source = source
        self.line_no = line_no
        self.text = text
        super().__init__(message)


def _parse_term(text: str, pos: int, line_no: int) -> tuple[str, int]:
    """Parse one term starting at ``pos``; returns (label, next_pos)."""
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        raise NTriplesError(f"line {line_no}: expected a term")
    ch = text[pos]
    if ch == "<":
        end = text.find(">", pos + 1)
        if end == -1:
            raise NTriplesError(f"line {line_no}: unterminated IRI")
        return text[pos + 1 : end], end + 1
    if ch == "_":
        if not text.startswith("_:", pos):
            raise NTriplesError(f"line {line_no}: malformed blank node")
        end = pos + 2
        while end < len(text) and not text[end].isspace():
            end += 1
        return text[pos:end], end
    if ch == '"':
        out = []
        i = pos + 1
        while i < len(text):
            c = text[i]
            if c == "\\":
                if i + 1 >= len(text):
                    raise NTriplesError(f"line {line_no}: dangling escape")
                escape = text[i + 1]
                out.append(
                    {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}.get(
                        escape, escape
                    )
                )
                i += 2
            elif c == '"':
                i += 1
                # Optional @lang or ^^<datatype> suffix.
                suffix_start = i
                if text.startswith("@", i):
                    while i < len(text) and not text[i].isspace():
                        i += 1
                elif text.startswith("^^<", i):
                    end = text.find(">", i + 3)
                    if end == -1:
                        raise NTriplesError(
                            f"line {line_no}: unterminated datatype IRI"
                        )
                    i = end + 1
                return '"' + "".join(out) + '"' + text[suffix_start:i], i
            else:
                out.append(c)
                i += 1
        raise NTriplesError(f"line {line_no}: unterminated literal")
    raise NTriplesError(f"line {line_no}: unexpected character {ch!r}")


def parse_ntriples_line(
    line: str, line_no: int = 0
) -> tuple[str, str, str] | None:
    """Parse one N-Triples statement; ``None`` for blanks/comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    s, pos = _parse_term(stripped, 0, line_no)
    p, pos = _parse_term(stripped, pos, line_no)
    o, pos = _parse_term(stripped, pos, line_no)
    rest = stripped[pos:].strip()
    if rest != ".":
        raise NTriplesError(
            f"line {line_no}: expected terminating '.', got {rest!r}"
        )
    return s, p, o


def iter_ntriples(
    lines: Iterable[str],
    source: str | None = None,
    strict: bool = True,
    stats: dict | None = None,
) -> Iterator[tuple[str, str, str]]:
    """Stream parsed triples from an iterable of lines.

    Errors are enriched with the ``source`` name and the offending
    text.  With ``strict=False`` malformed lines are skipped instead of
    raising; when ``stats`` (a dict) is given it receives the counters
    ``"triples"``/``"bad_lines"`` and an ``"errors"`` list with the
    first few diagnostics — so lenient loads still report what they
    dropped rather than hiding it.
    """
    if stats is not None:
        stats.setdefault("triples", 0)
        stats.setdefault("bad_lines", 0)
        stats.setdefault("errors", [])
    for line_no, line in enumerate(lines, start=1):
        try:
            parsed = parse_ntriples_line(line, line_no)
        except NTriplesError as exc:
            enriched = NTriplesError(
                f"{source or '<ntriples>'}: {exc}: {line.rstrip()!r}",
                source=source,
                line_no=line_no,
                text=line.rstrip("\n"),
            )
            if strict:
                raise enriched from None
            if stats is not None:
                stats["bad_lines"] += 1
                if len(stats["errors"]) < 20:
                    stats["errors"].append(str(enriched))
            continue
        if parsed is not None:
            if stats is not None:
                stats["triples"] += 1
            yield parsed


def load_ntriples(
    path: str, strict: bool = True, stats: dict | None = None
) -> Graph:
    """Load an N-Triples file into a dictionary-encoded :class:`Graph`.

    ``strict=False`` skips (and, via ``stats``, counts) malformed lines
    instead of aborting the whole load.
    """
    with open(path, encoding="utf-8") as f:
        return Graph.from_string_triples(
            iter_ntriples(f, source=path, strict=strict, stats=stats)
        )
