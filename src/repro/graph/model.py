"""Triples, triple patterns and basic graph patterns (§2.1 of the paper).

Terms of a pattern are either a :class:`Var` or a constant.  Constants may
be strings (user level) or integer ids (engine level, after encoding with
a :class:`~repro.graph.dictionary.Dictionary`); the engines in
:mod:`repro.core` and :mod:`repro.baselines` require encoded patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple, Sequence, Union

S, P, O = 0, 1, 2  #: attribute positions within a triple
ATTRIBUTE_NAMES = ("subject", "predicate", "object")


@dataclass(frozen=True, slots=True)
class Var:
    """A query variable (drawn from the set V of §2.1.2)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Union[Var, int, str]


class Triple(NamedTuple):
    """A graph edge ``s --p--> o``."""

    s: Term
    p: Term
    o: Term


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple where any position may be a variable.

    The pattern is the atomic query of §2.1.2; a set of them forms a
    :class:`BasicGraphPattern` (a conjunctive query over the graph).
    """

    s: Term
    p: Term
    o: Term

    @property
    def terms(self) -> tuple[Term, Term, Term]:
        return (self.s, self.p, self.o)

    def variables(self) -> list[Var]:
        """Distinct variables in (s, p, o) position order."""
        seen: list[Var] = []
        for term in self.terms:
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return seen

    def variable_positions(self, var: Var) -> list[int]:
        """Positions (0=s, 1=p, 2=o) where ``var`` occurs."""
        return [i for i, term in enumerate(self.terms) if term == var]

    def constants(self) -> list[tuple[int, Term]]:
        """``(position, constant)`` pairs of the bound positions."""
        return [
            (i, term)
            for i, term in enumerate(self.terms)
            if not isinstance(term, Var)
        ]

    def has_repeated_variable(self) -> bool:
        """True when some variable occurs in more than one position."""
        vars_ = [t for t in self.terms if isinstance(t, Var)]
        return len(vars_) != len(set(vars_))

    def is_fully_bound(self) -> bool:
        return not any(isinstance(t, Var) for t in self.terms)

    def substitute(self, binding: dict[Var, Term]) -> "TriplePattern":
        """Replace variables that appear in ``binding`` by their values."""
        return TriplePattern(
            *(binding.get(t, t) if isinstance(t, Var) else t for t in self.terms)
        )

    def kind(self) -> str:
        """Pattern-type signature such as ``(?, p, o)`` (used by Table 2)."""
        letters = []
        for pos, term in enumerate(self.terms):
            if isinstance(term, Var):
                letters.append("?")
            else:
                letters.append("spo"[pos])
        return "(" + ", ".join(letters) + ")"

    def __repr__(self) -> str:
        def fmt(t: Term) -> str:
            return repr(t) if isinstance(t, Var) else str(t)

        return f"({fmt(self.s)} {fmt(self.p)} {fmt(self.o)})"


class BasicGraphPattern:
    """A set of triple patterns, i.e. a conjunctive query (§2.1.2)."""

    def __init__(self, patterns: Sequence[TriplePattern]) -> None:
        if not patterns:
            raise ValueError("a basic graph pattern needs at least one pattern")
        self._patterns = list(patterns)

    @property
    def patterns(self) -> list[TriplePattern]:
        return list(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self._patterns)

    def variables(self) -> list[Var]:
        """Distinct variables in first-appearance order."""
        seen: list[Var] = []
        for pattern in self._patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def patterns_with(self, var: Var) -> list[TriplePattern]:
        """The sub-multiset Q_{x} of patterns mentioning ``var``."""
        return [t for t in self._patterns if var in t.variables()]

    def lonely_variables(self) -> set[Var]:
        """Variables appearing in exactly one triple pattern (§4.2)."""
        counts: dict[Var, int] = {}
        for pattern in self._patterns:
            for var in pattern.variables():
                counts[var] = counts.get(var, 0) + 1
        return {v for v, c in counts.items() if c == 1}

    def __repr__(self) -> str:
        return " . ".join(repr(t) for t in self._patterns)
