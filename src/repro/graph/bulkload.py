"""Streaming external-memory bulk construction of frozen ring packs.

``RingIndex(graph)`` needs the whole triple set (and three full sorts
of it) in RAM.  This module builds the *same* on-disk frozen pack
(:mod:`repro.core.frozen`) with bounded memory, so the index a host
serves can be an order of magnitude larger than its RAM:

1. **scan** — the source (N-Triples, id text, raw binary or any block
   iterable) is consumed in chunks of ``chunk_triples`` rows; each chunk
   is sorted, deduplicated and spilled to a run file (`build.spill`
   fault site).  With ``workers > 1`` the chunk is first split by
   splitmix64 subject hash (:func:`repro.serving.sharding.shard_vector`
   — the same hash the serving tier routes queries with) into disjoint
   per-partition spill streams;
2. **merge** — runs are merged in a *single pass* by a heap-free k-way
   merge with global duplicate elimination (`build.merge` fault site):
   every spill run is read exactly once as long as the run count stays
   within ``merge_fanin``; larger inputs fall back to fan-in-bounded
   recursive reduction rounds.  Triples are packed into single int64
   keys, ``(s·P + p)·N + o``, which makes every sort and merge a flat
   int64 operation;
3. **re-sort** — two more external sorts derive the ``(p, o, s)`` and
   ``(o, s, p)`` orders the ring's other zones need;
4. **incremental wavelet construction** — each zone's wavelet matrix is
   built level by level: the level's bit stream is packed directly into
   the pack's word buffer (``n/8`` bytes of RAM) while the sequence is
   stably partitioned into two scratch files that feed the next level —
   the classic construction loop of
   :class:`~repro.sequences.wavelet_matrix.WaveletMatrix`, replayed
   out of core and **byte-identical** to it (same packing, same
   counters via :meth:`BitVector.from_packed_words`);
5. **C arrays** — streaming bincount passes over the canonical stream.

**Parallel partitioned build** (``workers > 0``): the per-partition
sort→merge→re-sort pipelines, the three per-zone wavelet constructions
and the three count passes each run as independent *build tasks* on a
:class:`~repro.parallel.pool.TaskPool` of worker processes (dead
workers are rescued inline, exactly like the query pool).  Because the
partitions are disjoint by subject and the key embeds the subject,
k-way merging the per-partition sorted streams reproduces the global
sorted stream — the driver stitches the workers' spooled arrays into
one pack that is **byte-identical** to the serial build.
:func:`bulk_build_sharded` keeps the partitions separate instead and
emits a ready-to-serve ``SHARDS.json`` durable layout that
``ShardedRingIndex.recover(mmap=True)`` loads with zero extra passes.

The full triple set is never held in memory: peak RSS is dominated by
one chunk buffer, one ``n/8``-byte word buffer and one ``σ``-sized
count accumulator — per worker.  Everything intermediate lives in a
private spill directory, and the pack is published by an atomic rename
(:class:`~repro.core.frozen.PackWriter`), so a crash at *any* point
leaves either no pack or the previous intact one — never a torn index.

Byte-identity with the in-memory path (``RingIndex(graph).save_frozen``)
is a hard invariant, property-tested under random chunk sizes, worker
counts, merge fan-ins and permuted input order: same pack bytes, same
manifest, same answers.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Iterable, Optional

import numpy as np

from repro.bits.bitvector import BitVector
from repro.core.frozen import PackWriter, write_pack_manifest
from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary
from repro.graph.model import O, P, S
from repro.graph.ntriples import iter_ntriples

_KEY_LIMIT = (1 << 63) - 1

#: Default bounded fan-in of the k-way spill merge.  64 open run files
#: keep the per-reader buffers useful (io_block/64 values each) while
#: covering every realistic run count in one pass: runs are spilled at
#: ``chunk_triples`` granularity, so exceeding the fan-in takes a
#: dataset more than 64 chunks long.
DEFAULT_MERGE_FANIN = 64

__all__ = [
    "BulkBuildError",
    "DEFAULT_MERGE_FANIN",
    "bulk_build",
    "bulk_build_sharded",
]


class BulkBuildError(RuntimeError):
    """A streaming bulk build failed (typed; the target is untouched)."""


# -- fault-injectable primitives -------------------------------------------


def _spill_run(path: str, arr: np.ndarray) -> None:
    """Write one sorted run to disk (the ``build.spill`` fault site)."""
    with open(path, "wb") as f:
        arr.tofile(f)


def _merge_chunk(f, arr: np.ndarray) -> None:
    """Append one merged block (the ``build.merge`` fault site)."""
    arr.tofile(f)


# -- streaming primitives --------------------------------------------------


#: Block size (in int64 values, 1 MiB) for the read-only streaming
#: passes (merge, re-sort, wavelet, counts).  Decoupled from
#: ``chunk_triples``: the chunk bounds the scan/sort working set and the
#: spilled-run granularity, but the later passes only *read* sorted
#: streams, so their buffers can stay small no matter how large a chunk
#: the scan used — block boundaries never change the output bytes.
#: Keeping every such buffer ~1 MiB (plus its transform temporaries)
#: is what holds the whole build under the RSS-over-index gate.
_STREAM_BLOCK = 1 << 17


def _iter_file_int64(path: str, block: int):
    """Yield int64 blocks of up to ``block`` values from a raw file."""
    with open(path, "rb") as f:
        while True:
            arr = np.fromfile(f, dtype=np.int64, count=block)
            if arr.size == 0:
                return
            yield arr


def _align64(blocks, transform=None):
    """Re-chunk int64 blocks to multiples of 64 values (last may be
    ragged) — so bit-packing lands on word boundaries."""
    carry: Optional[np.ndarray] = None
    for arr in blocks:
        if transform is not None:
            arr = transform(arr)
        if carry is not None and carry.size:
            arr = np.concatenate([carry, arr])
        carry = None
        cut = (arr.size // 64) * 64
        if cut:
            yield arr[:cut]
        if cut < arr.size:
            carry = arr[cut:]
    if carry is not None and carry.size:
        yield carry


def _chain_files(paths, block: int):
    for path in paths:
        yield from _iter_file_int64(path, block)


def _iter_files_aligned(paths, block: int, transform=None):
    """64-aligned blocks over files read *sequentially* (one logical
    stream split across files, e.g. wavelet scratch partitions)."""
    block = max(64, block - block % 64)
    yield from _align64(_chain_files(paths, block), transform)


def _iter_merged_aligned(paths, block: int, transform=None):
    """64-aligned blocks over disjoint sorted runs, k-way *merged* into
    one globally sorted stream (e.g. per-partition zone streams)."""
    yield from _align64(_iter_kway(paths, block, dedup=False), transform)


class _RunReader:
    """Buffered reader over one sorted int64 run file."""

    def __init__(self, path: str, block: int, counter: Optional[dict] = None):
        self._gen = _iter_file_int64(path, block)
        self._counter = counter
        self.buf = np.empty(0, dtype=np.int64)
        self._eof = False
        self._fill()

    def _fill(self) -> None:
        while not self._eof and self.buf.size == 0:
            nxt = next(self._gen, None)
            if nxt is None:
                self._eof = True
            else:
                if self._counter is not None:
                    self._counter["bytes_read"] += nxt.nbytes
                self.buf = nxt

    @property
    def exhausted(self) -> bool:
        return self._eof and self.buf.size == 0

    def take(self, k: int) -> np.ndarray:
        out = self.buf[:k]
        self.buf = self.buf[k:]
        self._fill()
        return out


def _dedup_block(part: np.ndarray, last: Optional[int]):
    """Drop duplicates within ``part`` and against the previous block's
    final value; returns (filtered, new last)."""
    if part.size == 0:
        return part, last
    keep = np.empty(part.size, dtype=bool)
    keep[0] = last is None or int(part[0]) != last
    keep[1:] = part[1:] != part[:-1]
    part = part[keep]
    if part.size:
        last = int(part[-1])
    return part, last


def _iter_kway(paths, block: int, *, dedup: bool, counter: Optional[dict] = None):
    """Single-pass k-way merge of sorted int64 runs, as sorted blocks.

    Block-synchronous rather than heap-based: each round every reader
    contributes its prefix at or below the smallest buffered maximum
    (``searchsorted``), the prefixes are concatenated and sorted once —
    all vectorized, no per-element Python.  ``block`` bounds the *total*
    buffered values across readers, so memory stays O(block) at any
    fan-in.  With ``dedup`` the output stream is globally deduplicated.
    ``counter["bytes_read"]`` (if given) accumulates bytes fetched from
    disk — the single-pass accounting the merge gate checks.
    """
    per = max(64, block // max(1, len(paths)))
    readers = [_RunReader(p, per, counter) for p in paths]
    readers = [r for r in readers if not r.exhausted]
    last: Optional[int] = None
    while len(readers) > 1:
        bound = min(int(r.buf[-1]) for r in readers)
        parts = []
        for r in readers:
            k = int(np.searchsorted(r.buf, bound, side="right"))
            if k:
                parts.append(r.take(k))
        part = np.concatenate(parts) if len(parts) > 1 else parts[0]
        if len(parts) > 1:
            part.sort()
        if dedup:
            part, last = _dedup_block(part, last)
        if part.size:
            yield part
        readers = [r for r in readers if not r.exhausted]
    if readers:
        (reader,) = readers
        while not reader.exhausted:
            part = reader.take(reader.buf.size)
            if dedup:
                part, last = _dedup_block(part, last)
            if part.size:
                yield part


def _merge_group(
    paths, out_path: str, block: int, *, dedup: bool, counter: Optional[dict] = None
) -> int:
    """k-way merge a group of runs into one file; returns output length."""
    written = 0
    with open(out_path, "wb") as fo:
        for part in _iter_kway(paths, block, dedup=dedup, counter=counter):
            _merge_chunk(fo, part)
            written += part.size
    return written


def _merge_accumulate(
    stats: Optional[dict], *, fanin: int, runs: int, bytes_in: int,
    bytes_read: int, rounds: int,
) -> None:
    if stats is None:
        return
    stats["merge_fanin"] = fanin
    stats["merge_runs_merged"] = stats.get("merge_runs_merged", 0) + runs
    stats["merge_bytes_in"] = stats.get("merge_bytes_in", 0) + bytes_in
    stats["merge_bytes_read"] = stats.get("merge_bytes_read", 0) + bytes_read
    stats["merge_extra_pass_bytes"] = stats.get(
        "merge_extra_pass_bytes", 0
    ) + max(0, bytes_read - bytes_in)
    stats["merge_rounds"] = max(stats.get("merge_rounds", 0), rounds)
    stats["merge_passes"] = stats.get("merge_passes", 0) + 1


def _merge_runs(
    runs: list[str],
    workdir: str,
    block: int,
    tag: str,
    progress=None,
    *,
    fanin: int = DEFAULT_MERGE_FANIN,
    stats: Optional[dict] = None,
    keep_inputs: bool = False,
) -> tuple[str, int]:
    """k-way merge sorted runs down to one deduplicated file.

    A single pass when ``len(runs) <= fanin`` (each run's bytes are read
    exactly once); beyond that, fan-in-bounded reduction rounds shrink
    the run set first.  ``keep_inputs`` protects the *input* run files
    from deletion (pool mode: a rescued task must be able to re-read
    them); intermediates are always reclaimed.  Returns (path, length).
    """
    if not runs:
        empty = os.path.join(workdir, f"{tag}.empty.bin")
        open(empty, "wb").close()
        return empty, 0
    fanin = max(2, int(fanin))
    protected = set(runs) if keep_inputs else set()
    n_runs = len(runs)
    bytes_in = sum(os.path.getsize(r) for r in runs)
    counter = {"bytes_read": 0}
    rounds = 0
    generation = 0
    while len(runs) > fanin:
        rounds += 1
        if progress:
            progress(f"merge[{tag}]: reducing {len(runs)} runs (fan-in {fanin})")
        reduced: list[str] = []
        for i in range(0, len(runs), fanin):
            group = runs[i : i + fanin]
            if len(group) == 1:
                reduced.append(group[0])
                continue
            out = os.path.join(workdir, f"{tag}.g{generation}.{i // fanin}.bin")
            _merge_group(group, out, block, dedup=True, counter=counter)
            for path in group:
                if path not in protected:
                    os.unlink(path)
            reduced.append(out)
        runs = reduced
        generation += 1
    out = runs[0]
    if len(runs) > 1:
        if progress:
            progress(f"merge[{tag}]: {len(runs)} runs, final pass")
        out = os.path.join(workdir, f"{tag}.merged.bin")
        size = _merge_group(runs, out, block, dedup=True, counter=counter)
        for path in runs:
            if path not in protected:
                os.unlink(path)
    else:  # single run: already sorted + deduplicated at spill
        size = os.path.getsize(out) // 8
    _merge_accumulate(
        stats, fanin=fanin, runs=n_runs, bytes_in=bytes_in,
        bytes_read=counter["bytes_read"], rounds=rounds,
    )
    return out, size


def _merge_stats_into(stats: dict, mstats: dict) -> None:
    """Fold one task's merge accounting into the build-level stats."""
    for key, value in mstats.items():
        if key == "merge_rounds":
            stats[key] = max(stats.get(key, 0), value)
        elif key == "merge_fanin":
            stats[key] = value
        else:
            stats[key] = stats.get(key, 0) + value


# -- key packing -----------------------------------------------------------


def _check_universe(n_nodes: int, n_predicates: int) -> None:
    if n_nodes * n_nodes * max(n_predicates, 1) > _KEY_LIMIT:
        raise BulkBuildError(
            f"universe too large for int64 triple keys: "
            f"{n_nodes}^2 * {n_predicates} > 2^63-1"
        )


def _spo_keys(rows: np.ndarray, n_nodes: int, n_predicates: int) -> np.ndarray:
    return (rows[:, S] * n_predicates + rows[:, P]) * n_nodes + rows[:, O]


def _decode_spo(keys: np.ndarray, n_nodes: int, n_predicates: int):
    o = keys % n_nodes
    sp = keys // n_nodes
    return sp // n_predicates, sp % n_predicates, o


# -- source normalization --------------------------------------------------


def _blocks_from_text(path: str, chunk: int, parse_labels: bool):
    """Yield (block, dictionary) from a text source; ``dictionary`` is
    None for id-level files and grows incrementally for ``.nt``."""
    if parse_labels:
        dictionary = Dictionary()
        rows: list[tuple[int, int, int]] = []
        with open(path, encoding="utf-8") as f:
            for s, p, o in iter_ntriples(f, source=path):
                rows.append(
                    (
                        dictionary.add_node(s),
                        dictionary.add_predicate(p),
                        dictionary.add_node(o),
                    )
                )
                if len(rows) >= chunk:
                    yield np.array(rows, dtype=np.int64), dictionary
                    rows = []
        if rows:
            yield np.array(rows, dtype=np.int64), dictionary
        elif dictionary.n_nodes or dictionary.n_predicates:
            yield np.empty((0, 3), dtype=np.int64), dictionary
    else:
        rows = []
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise BulkBuildError(f"malformed triple line: {line!r}")
                rows.append((int(parts[0]), int(parts[1]), int(parts[2])))
                if len(rows) >= chunk:
                    yield np.array(rows, dtype=np.int64), None
                    rows = []
        if rows:
            yield np.array(rows, dtype=np.int64), None


def _blocks_from_bin(path: str, chunk: int):
    """Raw little-endian int64 ``(n, 3)`` row-major triples."""
    size = os.path.getsize(path)
    if size % 24:
        raise BulkBuildError(
            f"{path}: raw triple file size {size} is not a multiple of 24"
        )
    with open(path, "rb") as f:
        while True:
            arr = np.fromfile(f, dtype=np.int64, count=chunk * 3)
            if arr.size == 0:
                return
            yield arr.reshape(-1, 3), None


def _source_blocks(source, chunk: int):
    """Normalize any supported source into (block, dictionary) pairs."""
    if isinstance(source, Graph):
        triples = source.triples
        if len(triples) == 0:
            yield np.empty((0, 3), dtype=np.int64), source.dictionary
        for start in range(0, len(triples), chunk):
            yield triples[start : start + chunk], source.dictionary
        return
    if isinstance(source, (str, os.PathLike)):
        path = str(source)
        if not os.path.exists(path):
            raise BulkBuildError(f"source {path!r} does not exist")
        if path.endswith(".nt"):
            yield from _blocks_from_text(path, chunk, parse_labels=True)
        elif path.endswith(".bin"):
            yield from _blocks_from_bin(path, chunk)
        elif path.endswith(".npy"):
            mm = np.load(path, mmap_mode="r")
            if mm.ndim != 2 or mm.shape[1] != 3:
                raise BulkBuildError(f"{path}: expected an (n, 3) array")
            for start in range(0, len(mm), chunk):
                yield np.asarray(mm[start : start + chunk], dtype=np.int64), None
        else:
            yield from _blocks_from_text(path, chunk, parse_labels=False)
        return
    if isinstance(source, Iterable):
        pending: list[np.ndarray] = []
        count = 0
        for item in source:
            arr = np.asarray(item, dtype=np.int64)
            if arr.ndim == 1:
                arr = arr.reshape(1, 3)
            if arr.ndim != 2 or arr.shape[1] != 3:
                raise BulkBuildError("iterable items must be (k, 3) blocks")
            for start in range(0, len(arr), chunk):
                pending.append(arr[start : start + chunk])
                count += len(pending[-1])
                if count >= chunk:
                    yield np.concatenate(pending), None
                    pending, count = [], 0
        if pending:
            yield np.concatenate(pending), None
        return
    raise BulkBuildError(f"unsupported source type {type(source).__name__}")


# -- scan ------------------------------------------------------------------


def _scan_source(
    source, chunk: int, n_partitions: int, keyed: bool,
    n_nodes: Optional[int], n_predicates: Optional[int],
    workdir: str, stats: dict,
):
    """Phase 1: chunked scan into per-partition sorted deduplicated runs.

    With ``n_partitions > 1`` each pending chunk is split by splitmix64
    subject hash before spilling, so every partition's runs hold a
    disjoint subject subset — and because the triple key embeds the
    subject, per-partition dedup *is* global dedup and merging the
    per-partition sorted streams reproduces the global sorted stream.
    Runs hold packed keys when the universes are pinned upfront (1/3 the
    bytes of rows), sorted rows otherwise (keys need N and P).
    Returns (runs_per_partition, dictionary, max_node, max_pred).
    """
    shard_vector = None
    if n_partitions > 1:
        from repro.serving.sharding import shard_vector

    dictionary: Optional[Dictionary] = None
    max_node = -1
    max_pred = -1
    runs: list[list[str]] = [[] for _ in range(n_partitions)]
    pending: list[list[np.ndarray]] = [[] for _ in range(n_partitions)]
    pending_rows = 0

    def spill(pid: int) -> None:
        blocks = pending[pid]
        pending[pid] = []
        if not blocks:
            return
        block = np.concatenate(blocks) if len(blocks) > 1 else blocks[0]
        if len(block) == 0:
            return
        if block.min() < 0:
            raise BulkBuildError("ids must be non-negative")
        run = os.path.join(workdir, f"scan.p{pid}.run{len(runs[pid])}.bin")
        if keyed:
            if (
                int(block[:, S].max()) >= n_nodes
                or int(block[:, O].max()) >= n_nodes
                or int(block[:, P].max()) >= n_predicates
            ):
                raise BulkBuildError("id outside the pinned universes")
            keys = _spo_keys(block, int(n_nodes), int(n_predicates))
            keys.sort()
            if keys.size:
                keys = keys[np.concatenate(([True], keys[1:] != keys[:-1]))]
            _spill_run(run, keys)
        else:
            order = np.lexsort((block[:, O], block[:, P], block[:, S]))
            block = block[order]
            uniq = np.concatenate(
                ([True], np.any(block[1:] != block[:-1], axis=1))
            )
            block = np.ascontiguousarray(block[uniq])
            _spill_run(run, block)
        runs[pid].append(run)
        stats["runs_spilled"] += 1

    def flush_all() -> None:
        nonlocal pending_rows
        for pid in range(n_partitions):
            spill(pid)
        pending_rows = 0

    for block, block_dict in _source_blocks(source, chunk):
        if block_dict is not None:
            dictionary = block_dict
        if not len(block):
            continue
        stats["input_triples"] += len(block)
        block = np.ascontiguousarray(block, dtype=np.int64)
        if not keyed:
            max_node = max(
                max_node, int(block[:, S].max()), int(block[:, O].max())
            )
            max_pred = max(max_pred, int(block[:, P].max()))
        if shard_vector is None:
            pending[0].append(block)
        else:
            owner = shard_vector(block[:, S], n_partitions)
            for pid in np.unique(owner):
                pending[int(pid)].append(block[owner == pid])
        pending_rows += len(block)
        if pending_rows >= chunk:
            flush_all()
    flush_all()
    return runs, dictionary, max_node, max_pred


def _resolve_universe(
    dictionary: Optional[Dictionary], keyed: bool,
    n_nodes: Optional[int], n_predicates: Optional[int],
    max_node: int, max_pred: int,
) -> tuple[int, int]:
    """Universe resolution (mirrors Graph's inference exactly)."""
    if dictionary is not None:
        N, Pn = dictionary.n_nodes, dictionary.n_predicates
        if n_nodes is not None and n_nodes != N:
            raise BulkBuildError(
                "explicit n_nodes conflicts with the dictionary"
            )
        if n_predicates is not None and n_predicates != Pn:
            raise BulkBuildError(
                "explicit n_predicates conflicts with the dictionary"
            )
    elif keyed:
        N, Pn = int(n_nodes), int(n_predicates)
    else:
        N = int(n_nodes) if n_nodes is not None else max_node + 1
        Pn = (
            int(n_predicates)
            if n_predicates is not None
            else max_pred + 1
        )
        if max_node >= N or max_pred >= Pn:
            raise BulkBuildError("id outside the declared universes")
    _check_universe(N, Pn)
    return N, Pn


# -- wavelet + counts passes -----------------------------------------------


def _build_wavelet_streaming(
    sink,
    zone: int,
    key_paths: list[str],
    transform,
    n: int,
    sigma: int,
    workdir: str,
    chunk: int,
    scratch_tag: Optional[str] = None,
) -> dict:
    """One zone's wavelet matrix, level by level, out of core.

    ``key_paths`` is one sorted key stream or several disjoint sorted
    partition streams: level 0 k-way *merges* them into the zone's
    global order, while deeper levels read the previous level's two
    scratch partitions *sequentially* — those are one logical sequence
    split in two, not sorted runs to merge.  ``sink`` is a
    :class:`PackWriter` or any object with its ``add_array`` shape (the
    pool path spools to a scratch directory instead).  Returns the
    zone's manifest metadata block.
    """
    levels = max(1, (sigma - 1).bit_length())
    zeros_list: list[int] = []
    level_meta: list[dict] = []
    inputs = list(key_paths)
    sources = set(inputs)
    merged = len(inputs) > 1
    input_transform = transform
    prefix_tag = scratch_tag or f"wm{zone}"
    nwords = -(-max(n, 1) // 64)
    for level in range(levels):
        shift = levels - 1 - level
        words = np.zeros(nwords, dtype=np.uint64)
        wbytes = words.view(np.uint8)
        zero_path = os.path.join(workdir, f"{prefix_tag}.l{level}.part0.bin")
        one_path = os.path.join(workdir, f"{prefix_tag}.l{level}.part1.bin")
        zeros = 0
        byte_pos = 0
        last_level = level == levels - 1
        if merged:
            blocks = _iter_merged_aligned(inputs, chunk, input_transform)
        else:
            blocks = _iter_files_aligned(inputs, chunk, input_transform)
        with open(zero_path, "wb") as zf, open(one_path, "wb") as of:
            for vals in blocks:
                bits = ((vals >> shift) & 1).astype(np.uint8)
                packed = np.packbits(bits, bitorder="little")
                wbytes[byte_pos : byte_pos + packed.size] = packed
                byte_pos += packed.size
                mask = bits.view(bool)
                if not last_level:  # the bottom partition feeds nothing
                    vals[~mask].tofile(zf)
                    vals[mask].tofile(of)
                zeros += int(vals.size - mask.sum())
        bv = BitVector.from_packed_words(words, n)
        prefix = f"wm{zone}.l{level}"
        sink.add_array(f"{prefix}.words", bv._words)
        sink.add_array(f"{prefix}.super", bv._super)
        sink.add_array(f"{prefix}.rel", bv._rel)
        zeros_list.append(zeros)
        level_meta.append({"n": n, "ones": bv._ones})
        for path in inputs:
            if path not in sources:
                os.unlink(path)
        inputs = [zero_path, one_path]
        merged = False
        input_transform = None
    for path in inputs:
        if path not in sources and os.path.exists(path):
            os.unlink(path)
    return {
        "n": n,
        "sigma": sigma,
        "levels": levels,
        "zeros": zeros_list,
        "level_meta": level_meta,
    }


def _counts_from_keys(
    key_paths: list[str], chunk: int, decode, sigma: int
) -> np.ndarray:
    """Streaming ``counts_from_column``: cumulative counts, length σ+1.

    Working memory is exactly one σ+1 accumulator plus O(chunk)
    temporaries: each chunk's column is run-length encoded
    (``np.unique``) so the scatter-add touches only the values present,
    where a ``bincount`` per chunk would allocate a *second* σ-sized
    array every iteration — at σ = 3 M nodes that one temporary is
    24 MB, the difference between passing and blowing the build's
    RSS-over-index gate.  The histogram is order-independent, so the
    per-partition streams chain sequentially — no merge needed.  The
    final prefix sum runs in place.
    """
    out = np.zeros(sigma + 1, dtype=np.int64)
    if sigma:
        acc = out[1:]
        for path in key_paths:
            for keys in _iter_file_int64(path, chunk):
                values, counts = np.unique(decode(keys), return_counts=True)
                acc[values] += counts
        np.cumsum(acc, out=acc)
    return out


def _count_decoder(attr: int, n_nodes: int, n_predicates: int):
    """Single-column decoder for the C-array passes: with
    ``key = (s·P + p)·N + o`` every column is one division/modulo away,
    where ``_decode_spo`` would materialise all three columns (five
    chunk-sized temporaries) when each pass needs exactly one."""
    N, Pn = n_nodes, n_predicates
    if attr == S:
        return (lambda keys: keys // (N * Pn)) if N * Pn else (lambda keys: keys)
    if attr == P:
        return (lambda keys: (keys // N) % Pn) if N and Pn else (lambda keys: keys)
    return (lambda keys: keys % N) if N else (lambda keys: keys)


def _external_sort(
    src_path: str,
    repack,
    workdir: str,
    run_values: int,
    io_block: int,
    tag: str,
    progress=None,
    *,
    fanin: int = DEFAULT_MERGE_FANIN,
    stats: Optional[dict] = None,
) -> str:
    """Re-sort a key stream under a different key packing, out of core.

    Runs are spilled at ``run_values`` granularity (the scan chunk — the
    working-set bound the caller already pays), which keeps the run
    count within one merge fan-in at scale so the k-way merge stays a
    single pass; the merge itself reads with ``io_block``-value buffers.
    """
    runs: list[str] = []
    for i, keys in enumerate(_iter_file_int64(src_path, max(64, run_values))):
        new_keys = repack(keys)
        new_keys.sort()
        run = os.path.join(workdir, f"{tag}.run{i}.bin")
        _spill_run(run, new_keys)
        runs.append(run)
    path, _ = _merge_runs(
        runs, workdir, io_block, tag, progress, fanin=fanin, stats=stats
    )
    return path


# -- build tasks -----------------------------------------------------------


#: Executor spec handed to :class:`repro.parallel.pool.TaskPool` — the
#: worker resolves it per task, so a fault patched over
#: ``_execute_build_task`` (the ``build.worker`` site) fires inside the
#: forked worker too.
_TASK_EXECUTOR = "repro.graph.bulkload:_execute_build_task"

#: Test/chaos hook: when set, called with each freshly created TaskPool
#: (drills install ``_kill_after_dispatch`` through it).
_POOL_HOOK = None


def _partition_streams(
    pid: int,
    runs: list[str],
    keyed: bool,
    n_nodes: int,
    n_predicates: int,
    run_values: int,
    io_block: int,
    fanin: int,
    workdir: str,
    tag: str,
    keep_inputs: bool = False,
) -> dict:
    """Merge + re-sort one partition's scan runs into its three sorted
    zone streams (spo, pos, osp).  Re-runnable when ``keep_inputs`` is
    set: the scan runs (task *inputs*) are never deleted, and every
    intermediate is regenerated with truncating writes — so an inline
    rescue after a worker kill reproduces the exact same files.
    """
    N, Pn = int(n_nodes), int(n_predicates)
    mstats: dict = {}
    if not keyed and runs:
        # Row runs become key runs now that N and P are known.
        key_runs = []
        for i, run in enumerate(runs):
            krun = os.path.join(workdir, f"{tag}.keys{i}.bin")
            with open(krun, "wb") as kf:
                for rows in _iter_file_int64(run, io_block * 3):
                    _merge_chunk(kf, _spo_keys(rows.reshape(-1, 3), N, Pn))
            if not keep_inputs:
                os.unlink(run)
            key_runs.append(krun)
        runs = key_runs
        keep_inputs = False  # key runs are task-local: always reclaim

    spo_path, n = _merge_runs(
        runs, workdir, io_block, f"{tag}.spo",
        fanin=fanin, stats=mstats, keep_inputs=keep_inputs,
    )

    def to_pos(keys: np.ndarray) -> np.ndarray:
        s, p, o = _decode_spo(keys, N, Pn)
        return (p * N + o) * N + s

    def to_osp(keys: np.ndarray) -> np.ndarray:
        s, p, o = _decode_spo(keys, N, Pn)
        return (o * N + s) * Pn + p

    pos_path = _external_sort(
        spo_path, to_pos, workdir, run_values, io_block, f"{tag}.pos",
        fanin=fanin, stats=mstats,
    )
    osp_path = _external_sort(
        spo_path, to_osp, workdir, run_values, io_block, f"{tag}.osp",
        fanin=fanin, stats=mstats,
    )
    return {
        "pid": pid,
        "n": n,
        "spo": spo_path,
        "pos": pos_path,
        "osp": osp_path,
        "merge_stats": mstats,
    }


def _partition_task(payload: dict) -> dict:
    return _partition_streams(
        payload["pid"], payload["runs"], payload["keyed"],
        payload["n_nodes"], payload["n_predicates"],
        payload["run_values"], payload["io_block"], payload["fanin"],
        payload["workdir"], payload["tag"],
        keep_inputs=payload.get("keep_inputs", False),
    )


class _ScratchSink:
    """PackWriter-shaped sink that spools arrays to a scratch directory.

    Build workers cannot append to the (single) pack concurrently, so a
    wavelet/counts task streams its arrays here and the driver replays
    them into the real :class:`PackWriter` in canonical order with
    :meth:`~repro.core.frozen.PackWriter.add_array_from_file` — a pure
    byte copy, so the stitched pack is identical to a serial build's.
    """

    def __init__(self, directory: str) -> None:
        self._dir = directory
        self.table: list[tuple[str, str, str, int]] = []

    def add_array(self, name: str, arr: np.ndarray) -> None:
        arr = np.ascontiguousarray(arr)
        fname = f"{len(self.table):03d}.arr"
        arr.tofile(os.path.join(self._dir, fname))
        self.table.append((name, fname, arr.dtype.str, int(arr.size)))


def _wavelet_task(payload: dict) -> dict:
    scratch = os.path.join(payload["workdir"], payload["scratch"])
    os.makedirs(scratch, exist_ok=True)
    sink = _ScratchSink(scratch)
    mod = payload["mod"]
    meta = _build_wavelet_streaming(
        sink, payload["zone"], payload["paths"],
        lambda keys: keys % mod,
        payload["n"], payload["sigma"], payload["workdir"],
        payload["io_block"],
    )
    return {
        "zone": payload["zone"],
        "meta": meta,
        "scratch": payload["scratch"],
        "table": sink.table,
    }


def _counts_task(payload: dict) -> dict:
    scratch = os.path.join(payload["workdir"], payload["scratch"])
    os.makedirs(scratch, exist_ok=True)
    decode = _count_decoder(
        payload["attr"], payload["n_nodes"], payload["n_predicates"]
    )
    c = _counts_from_keys(
        payload["paths"], payload["io_block"], decode, payload["sigma"]
    )
    fname = f"c{payload['attr']}.arr"
    c.tofile(os.path.join(scratch, fname))
    return {
        "attr": payload["attr"],
        "scratch": payload["scratch"],
        "file": fname,
        "dtype": c.dtype.str,
        "size": int(c.size),
    }


def _shard_task(payload: dict) -> dict:
    """Build one shard's complete durable store: merge + re-sort its
    partition, write its frozen pack, install it as the store's first
    checkpoint beside a fresh empty WAL.  Re-runnable: the shard
    directory is rebuilt from scratch, so a rescued kill mid-task (even
    after the WAL was created) starts clean."""
    from repro.reliability.integrity import manifest_path
    from repro.reliability.wal import install_frozen_checkpoint

    workdir = payload["workdir"]
    tag = payload["tag"]
    N = int(payload["n_nodes"])
    Pn = int(payload["n_predicates"])
    io_block = payload["io_block"]
    shard_dir = payload["shard_dir"]
    shutil.rmtree(shard_dir, ignore_errors=True)
    os.makedirs(shard_dir)
    upath = payload["universe"]
    udst = os.path.join(shard_dir, "universe.npz")
    shutil.copyfile(upath, udst)
    shutil.copyfile(manifest_path(upath), manifest_path(udst))

    part = _partition_streams(
        payload["pid"], payload["runs"], payload["keyed"], N, Pn,
        payload["run_values"], io_block, payload["fanin"],
        workdir, tag, keep_inputs=payload.get("keep_inputs", False),
    )
    n = part["n"]
    pack_path = os.path.join(workdir, f"{tag}.pack.ring")
    writer: Optional[PackWriter] = PackWriter(pack_path)
    try:
        sigma = {S: N, P: Pn, O: N}
        wm_meta = {
            S: _build_wavelet_streaming(
                writer, S, [part["spo"]], lambda keys: keys % max(N, 1),
                n, sigma[O], workdir, io_block, scratch_tag=f"{tag}.wm{S}",
            ),
            P: _build_wavelet_streaming(
                writer, P, [part["pos"]], lambda keys: keys % max(N, 1),
                n, sigma[S], workdir, io_block, scratch_tag=f"{tag}.wm{P}",
            ),
            O: _build_wavelet_streaming(
                writer, O, [part["osp"]], lambda keys: keys % max(Pn, 1),
                n, sigma[P], workdir, io_block, scratch_tag=f"{tag}.wm{O}",
            ),
        }
        for attr in (S, P, O):
            c = _counts_from_keys(
                [part["spo"]], io_block, _count_decoder(attr, N, Pn),
                sigma[attr],
            )
            writer.add_array(f"c{attr}", c)
        table = writer.table
        size = writer.finish()
        writer = None
        meta = {
            "n": n,
            "sigma": (N, Pn, N),
            "leap_memo_size": int(payload["leap_memo_size"]),
            "wm": wm_meta,
        }
        write_pack_manifest(
            pack_path, meta=meta, table=table, file_size=size,
            n_nodes=N, n_predicates=Pn, dictionary=None,
        )
    finally:
        if writer is not None:
            writer.abort()
    install_frozen_checkpoint(
        shard_dir, pack_path, n_triples=n, n_nodes=N, n_predicates=Pn
    )
    for key in ("spo", "pos", "osp"):
        if os.path.exists(part[key]):
            os.unlink(part[key])
    return {
        "pid": payload["pid"],
        "n": n,
        "pack_bytes": size,
        "merge_stats": part["merge_stats"],
    }


def _execute_build_task(payload: dict) -> dict:
    """Run one build task (the ``build.worker`` fault site).

    Dispatched in a pool worker when the build is parallel, inline
    otherwise; either way the result carries the executing process's
    peak RSS so the driver can enforce the per-worker memory budget.
    """
    kind = payload["kind"]
    if kind == "partition":
        result = _partition_task(payload)
    elif kind == "wavelet":
        result = _wavelet_task(payload)
    elif kind == "counts":
        result = _counts_task(payload)
    elif kind == "shard":
        result = _shard_task(payload)
    else:
        raise BulkBuildError(f"unknown build task kind {kind!r}")
    result["kind"] = kind
    try:
        from repro.perf.hostmeta import peak_rss_bytes

        result["peak_rss_bytes"] = peak_rss_bytes()
    except Exception:
        result["peak_rss_bytes"] = None
    return result


def _run_build_tasks(payloads: list[dict], workers: int, stats: dict) -> list:
    """Run build tasks on a :class:`TaskPool`, or inline.

    Pool *startup* failure degrades to the serial path (recorded in
    ``stats["pool_degraded"]``) rather than failing the build; worker
    deaths mid-batch are already rescued inside the pool itself.
    """
    if not payloads:
        return []
    if workers > 0:
        from repro.parallel.pool import PoolUnavailable, TaskPool

        try:
            pool = TaskPool(_TASK_EXECUTOR, workers=workers)
        except PoolUnavailable:
            stats["pool_degraded"] = True
        else:
            if _POOL_HOOK is not None:
                _POOL_HOOK(pool)
            try:
                results = pool.run(payloads)
            finally:
                pool.close()
            for key, value in pool.stats().items():
                stats[f"pool_{key}"] = value
            return results
    return [_execute_build_task(dict(p)) for p in payloads]


# -- the builder -----------------------------------------------------------


def bulk_build(
    source,
    out_path,
    *,
    chunk_triples: int = 1_000_000,
    n_nodes: Optional[int] = None,
    n_predicates: Optional[int] = None,
    spill_dir: Optional[str] = None,
    leap_memo_size: int = 1 << 16,
    progress=None,
    stats: Optional[dict] = None,
    workers: int = 0,
    merge_fanin: int = DEFAULT_MERGE_FANIN,
) -> dict:
    """Stream-build a frozen ring pack at ``out_path``; returns the manifest.

    ``source`` may be a ``.nt`` file (labels, dictionary built
    incrementally), a ``.bin`` file (raw int64 ``(n, 3)`` rows), a
    ``.npy`` array, an id-text file (``s p o`` per line), a
    :class:`Graph`, or any iterable of rows/blocks.  ``chunk_triples``
    bounds the scan/sort working set; ``n_nodes``/``n_predicates`` pin
    the universes (inferred from the data when omitted, exactly like
    :class:`Graph`).  ``workers > 0`` runs the build tasks on a pool of
    that many worker processes, with the scan partitioned by subject
    hash when ``workers > 1`` — the output is byte-identical to the
    serial build.  ``merge_fanin`` bounds how many spill runs one k-way
    merge pass opens.  All spill files live in a private directory under
    ``spill_dir`` (default: next to ``out_path``) and are removed on
    exit; the pack itself appears atomically.  ``stats`` (a dict, if
    given) receives build counters, including the merge accounting
    (``merge_runs_merged``, ``merge_bytes_read``,
    ``merge_extra_pass_bytes``, …).  Failures raise
    :class:`BulkBuildError` and leave no partial pack behind.
    """
    out_path = str(out_path)
    if chunk_triples < 1:
        raise ValueError("chunk_triples must be positive")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    if merge_fanin < 2:
        raise ValueError("merge_fanin must be at least 2")
    chunk = int(chunk_triples)
    fanin = int(merge_fanin)
    workers = int(workers)
    use_pool = workers > 0
    n_partitions = workers if workers > 1 else 1
    parent = spill_dir or (os.path.dirname(os.path.abspath(out_path)) or ".")
    os.makedirs(parent, exist_ok=True)
    workdir = tempfile.mkdtemp(prefix=".bulkload-", dir=parent)
    if stats is None:
        stats = {}
    stats.update(
        input_triples=0, runs_spilled=0, phase="scan",
        workers=workers, n_partitions=n_partitions,
    )
    writer: Optional[PackWriter] = None
    try:
        keyed = n_nodes is not None and n_predicates is not None
        if keyed:
            _check_universe(int(n_nodes), int(n_predicates))
        part_runs, dictionary, max_node, max_pred = _scan_source(
            source, chunk, n_partitions, keyed, n_nodes, n_predicates,
            workdir, stats,
        )
        N, Pn = _resolve_universe(
            dictionary, keyed, n_nodes, n_predicates, max_node, max_pred
        )

        # Phase 2+3: per-partition merge to sorted zone streams.
        # Everything from here on streams sorted files: read buffers
        # shrink to _STREAM_BLOCK regardless of the scan chunk.
        stats["phase"] = "merge"
        io_block = max(64, min(chunk, _STREAM_BLOCK))
        payloads = [
            {
                "kind": "partition",
                "pid": pid,
                "runs": runs,
                "keyed": keyed,
                "n_nodes": N,
                "n_predicates": Pn,
                "run_values": chunk,
                "io_block": io_block,
                "fanin": fanin,
                "workdir": workdir,
                "tag": f"p{pid}",
                "keep_inputs": use_pool,
            }
            for pid, runs in enumerate(part_runs)
        ]
        parts = sorted(
            _run_build_tasks(payloads, workers, stats),
            key=lambda r: r["pid"],
        )
        n = sum(p["n"] for p in parts)
        for part in parts:
            _merge_stats_into(stats, part["merge_stats"])
        stats["n_triples"] = n
        stats["deduplicated"] = stats["input_triples"] - n
        if progress:
            progress(
                f"canonical stream: {n} triples ({n_partitions} partitions)"
            )

        spo_paths = [p["spo"] for p in parts]
        sigma = {S: N, P: Pn, O: N}
        zone_specs = [
            (S, spo_paths, max(N, 1), sigma[O]),
            (P, [p["pos"] for p in parts], max(N, 1), sigma[S]),
            (O, [p["osp"] for p in parts], max(Pn, 1), sigma[P]),
        ]

        stats["phase"] = "wavelet"
        if not use_pool:
            # Phases 4+5 inline, straight into the pack.
            writer = PackWriter(out_path)
            wm_meta = {}
            for zone, paths, mod, zsigma in zone_specs:
                wm_meta[zone] = _build_wavelet_streaming(
                    writer, zone, paths,
                    lambda keys, _m=mod: keys % _m,
                    n, zsigma, workdir, io_block,
                )
            stats["phase"] = "counts"
            for attr in (S, P, O):
                c = _counts_from_keys(
                    spo_paths, io_block, _count_decoder(attr, N, Pn),
                    sigma[attr],
                )
                writer.add_array(f"c{attr}", c)
        else:
            # Phases 4+5 as pool tasks (three zones + three count
            # columns in one batch), then stitch the spooled arrays
            # into the pack in canonical order.
            task_payloads = [
                {
                    "kind": "wavelet", "zone": zone, "paths": paths,
                    "mod": mod, "n": n, "sigma": zsigma,
                    "workdir": workdir, "io_block": io_block,
                    "scratch": f"wm{zone}-scratch",
                }
                for zone, paths, mod, zsigma in zone_specs
            ] + [
                {
                    "kind": "counts", "attr": attr, "paths": spo_paths,
                    "n_nodes": N, "n_predicates": Pn,
                    "sigma": sigma[attr], "workdir": workdir,
                    "io_block": io_block, "scratch": f"c{attr}-scratch",
                }
                for attr in (S, P, O)
            ]
            results = _run_build_tasks(task_payloads, workers, stats)
            wavelets = {r["zone"]: r for r in results if r["kind"] == "wavelet"}
            counts = {r["attr"]: r for r in results if r["kind"] == "counts"}
            peaks = [
                r["peak_rss_bytes"]
                for r in parts + results
                if r.get("peak_rss_bytes")
            ]
            if peaks:
                stats["worker_peak_rss_bytes"] = max(peaks)
            stats["phase"] = "stitch"
            writer = PackWriter(out_path)
            wm_meta = {}
            for zone, _paths, _mod, _zsigma in zone_specs:
                r = wavelets[zone]
                wm_meta[zone] = r["meta"]
                scratch = os.path.join(workdir, r["scratch"])
                for name, fname, dtype, size in r["table"]:
                    writer.add_array_from_file(
                        name, os.path.join(scratch, fname), dtype, size
                    )
            for attr in (S, P, O):
                r = counts[attr]
                writer.add_array_from_file(
                    f"c{attr}",
                    os.path.join(workdir, r["scratch"], r["file"]),
                    r["dtype"], r["size"],
                )
        table = writer.table
        size = writer.finish()
        writer = None
        stats["phase"] = "manifest"
        meta = {
            "n": n,
            "sigma": (N, Pn, N),
            "leap_memo_size": int(leap_memo_size),
            "wm": wm_meta,
        }
        manifest = write_pack_manifest(
            out_path,
            meta=meta,
            table=table,
            file_size=size,
            n_nodes=N,
            n_predicates=Pn,
            dictionary=dictionary,
        )
        stats["phase"] = "done"
        stats["pack_bytes"] = size
        return manifest
    except BulkBuildError:
        raise
    except Exception as exc:
        raise BulkBuildError(
            f"bulk build failed during {stats.get('phase')}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    finally:
        if writer is not None:
            writer.abort()
        shutil.rmtree(workdir, ignore_errors=True)


def bulk_build_sharded(
    source,
    out_dir,
    *,
    n_shards: int,
    chunk_triples: int = 1_000_000,
    n_nodes: Optional[int] = None,
    n_predicates: Optional[int] = None,
    spill_dir: Optional[str] = None,
    leap_memo_size: int = 1 << 16,
    progress=None,
    stats: Optional[dict] = None,
    workers: int = 0,
    merge_fanin: int = DEFAULT_MERGE_FANIN,
) -> dict:
    """Partition-build a ready-to-serve sharded durable layout.

    One scan pass splits the source by splitmix64 subject hash — the
    exact hash :class:`~repro.serving.sharding.ShardedRingIndex` routes
    queries with — and each shard's sort/merge/wavelet pipeline runs as
    one build task (concurrently across shards when ``workers > 0``).
    Every shard directory becomes a complete durable store (universe
    payload, frozen-pack checkpoint, fresh empty WAL), so
    ``ShardedRingIndex.recover(out_dir, mmap=True)`` serves the result
    with **zero** extra passes over the data.  The layout is published
    atomically: built under ``<out_dir>.tmp`` and renamed into place, so
    a crash leaves no half-written layout.  Returns the ``SHARDS.json``
    manifest dict.
    """
    out_dir = str(out_dir)
    if chunk_triples < 1:
        raise ValueError("chunk_triples must be positive")
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    if merge_fanin < 2:
        raise ValueError("merge_fanin must be at least 2")
    if os.path.exists(out_dir):
        raise BulkBuildError(f"output directory {out_dir!r} already exists")
    chunk = int(chunk_triples)
    fanin = int(merge_fanin)
    workers = int(workers)
    n_shards = int(n_shards)
    parent = spill_dir or (os.path.dirname(os.path.abspath(out_dir)) or ".")
    os.makedirs(parent, exist_ok=True)
    workdir = tempfile.mkdtemp(prefix=".bulkload-", dir=parent)
    tmp_dir = out_dir + ".tmp"
    if stats is None:
        stats = {}
    stats.update(
        input_triples=0, runs_spilled=0, phase="scan",
        workers=workers, n_shards=n_shards,
    )
    try:
        keyed = n_nodes is not None and n_predicates is not None
        if keyed:
            _check_universe(int(n_nodes), int(n_predicates))
        part_runs, dictionary, max_node, max_pred = _scan_source(
            source, chunk, n_shards, keyed, n_nodes, n_predicates,
            workdir, stats,
        )
        N, Pn = _resolve_universe(
            dictionary, keyed, n_nodes, n_predicates, max_node, max_pred
        )

        # The universe payload every shard's durable store embeds
        # (written once, copied per shard by its build task).
        from repro.graph.io import save_graph
        from repro.reliability.integrity import write_manifest

        universe = Graph(
            np.zeros((0, 3), dtype=np.int64),
            n_nodes=N, n_predicates=Pn, dictionary=dictionary,
        )
        upath = os.path.join(workdir, "universe.npz")
        save_graph(universe, upath)
        write_manifest(upath, compressed=False, graph=universe)

        shutil.rmtree(tmp_dir, ignore_errors=True)
        os.makedirs(tmp_dir)
        stats["phase"] = "shards"
        io_block = max(64, min(chunk, _STREAM_BLOCK))
        payloads = [
            {
                "kind": "shard",
                "pid": sid,
                "runs": runs,
                "keyed": keyed,
                "n_nodes": N,
                "n_predicates": Pn,
                "run_values": chunk,
                "io_block": io_block,
                "fanin": fanin,
                "workdir": workdir,
                "tag": f"s{sid}",
                "keep_inputs": workers > 0,
                "universe": upath,
                "shard_dir": os.path.join(tmp_dir, f"shard-{sid:02d}"),
                "leap_memo_size": int(leap_memo_size),
            }
            for sid, runs in enumerate(part_runs)
        ]
        results = sorted(
            _run_build_tasks(payloads, workers, stats),
            key=lambda r: r["pid"],
        )
        n = sum(r["n"] for r in results)
        for result in results:
            _merge_stats_into(stats, result["merge_stats"])
        peaks = [
            r["peak_rss_bytes"] for r in results if r.get("peak_rss_bytes")
        ]
        if peaks:
            stats["worker_peak_rss_bytes"] = max(peaks)
        stats["n_triples"] = n
        stats["deduplicated"] = stats["input_triples"] - n
        stats["shard_triples"] = [r["n"] for r in results]
        stats["pack_bytes"] = sum(r["pack_bytes"] for r in results)

        stats["phase"] = "manifest"
        from repro.serving.sharding import write_shards_manifest

        manifest = write_shards_manifest(
            tmp_dir, n_shards=n_shards, n_nodes=N, n_predicates=Pn,
            replicas=1, transport="inproc",
        )
        os.replace(tmp_dir, out_dir)
        stats["phase"] = "done"
        if progress:
            progress(f"sharded layout: {n} triples across {n_shards} shards")
        return manifest
    except BulkBuildError:
        raise
    except Exception as exc:
        raise BulkBuildError(
            f"sharded bulk build failed during {stats.get('phase')}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
        shutil.rmtree(tmp_dir, ignore_errors=True)
