"""Streaming external-memory bulk construction of frozen ring packs.

``RingIndex(graph)`` needs the whole triple set (and three full sorts
of it) in RAM.  This module builds the *same* on-disk frozen pack
(:mod:`repro.core.frozen`) with bounded memory, so the index a host
serves can be an order of magnitude larger than its RAM:

1. **scan** — the source (N-Triples, id text, raw binary or any block
   iterable) is consumed in chunks of ``chunk_triples`` rows; each chunk
   is sorted, deduplicated and spilled to a run file (`build.spill`
   fault site);
2. **merge** — runs are merged pairwise as sorted streams with
   duplicate elimination (`build.merge` fault site) into one canonical
   ``(s, p, o)``-ordered key stream (triples are packed into single
   int64 keys, ``(s·P + p)·N + o``, which makes every sort and merge a
   flat int64 operation);
3. **re-sort** — two more external sorts derive the ``(p, o, s)`` and
   ``(o, s, p)`` orders the ring's other zones need;
4. **incremental wavelet construction** — each zone's wavelet matrix is
   built level by level: the level's bit stream is packed directly into
   the pack's word buffer (``n/8`` bytes of RAM) while the sequence is
   stably partitioned into two scratch files that feed the next level —
   the classic construction loop of
   :class:`~repro.sequences.wavelet_matrix.WaveletMatrix`, replayed
   out of core and **byte-identical** to it (same packing, same
   counters via :meth:`BitVector.from_packed_words`);
5. **C arrays** — streaming bincount passes over the canonical stream.

The full triple set is never held in memory: peak RSS is dominated by
one chunk buffer, one ``n/8``-byte word buffer and one ``σ``-sized
count accumulator.  Everything intermediate lives in a private spill
directory, and the pack is published by an atomic rename
(:class:`~repro.core.frozen.PackWriter`), so a crash at *any* point
leaves either no pack or the previous intact one — never a torn index.

Byte-identity with the in-memory path (``RingIndex(graph).save_frozen``)
is a hard invariant, property-tested under random chunk sizes and
permuted input order: same pack bytes, same manifest, same answers.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Iterable, Optional

import numpy as np

from repro.bits.bitvector import BitVector
from repro.core.frozen import PackWriter, write_pack_manifest
from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary
from repro.graph.model import O, P, S
from repro.graph.ntriples import iter_ntriples

_KEY_LIMIT = (1 << 63) - 1

__all__ = ["BulkBuildError", "bulk_build"]


class BulkBuildError(RuntimeError):
    """A streaming bulk build failed (typed; the target is untouched)."""


# -- fault-injectable primitives -------------------------------------------


def _spill_run(path: str, arr: np.ndarray) -> None:
    """Write one sorted run to disk (the ``build.spill`` fault site)."""
    with open(path, "wb") as f:
        arr.tofile(f)


def _merge_chunk(f, arr: np.ndarray) -> None:
    """Append one merged block (the ``build.merge`` fault site)."""
    arr.tofile(f)


# -- streaming primitives --------------------------------------------------


#: Block size (in int64 values, 1 MiB) for the read-only streaming
#: passes (merge, re-sort, wavelet, counts).  Decoupled from
#: ``chunk_triples``: the chunk bounds the scan/sort working set and the
#: spilled-run granularity, but the later passes only *read* sorted
#: streams, so their buffers can stay small no matter how large a chunk
#: the scan used — block boundaries never change the output bytes.
#: Keeping every such buffer ~1 MiB (plus its transform temporaries)
#: is what holds the whole build under the RSS-over-index gate.
_STREAM_BLOCK = 1 << 17


def _iter_file_int64(path: str, block: int):
    """Yield int64 blocks of up to ``block`` values from a raw file."""
    with open(path, "rb") as f:
        while True:
            arr = np.fromfile(f, dtype=np.int64, count=block)
            if arr.size == 0:
                return
            yield arr


def _iter_files_aligned(paths, block: int, transform=None):
    """Yield int64 blocks across files, sizes multiples of 64 (last may
    be ragged) — so bit-packing lands on word boundaries."""
    block = max(64, block - block % 64)
    carry: Optional[np.ndarray] = None
    for path in paths:
        with open(path, "rb") as f:
            while True:
                arr = np.fromfile(f, dtype=np.int64, count=block)
                if arr.size == 0:
                    break
                if transform is not None:
                    arr = transform(arr)
                if carry is not None and carry.size:
                    arr = np.concatenate([carry, arr])
                carry = None
                cut = (arr.size // 64) * 64
                if cut:
                    yield arr[:cut]
                if cut < arr.size:
                    carry = arr[cut:]
    if carry is not None and carry.size:
        yield carry


class _RunReader:
    """Buffered reader over one sorted int64 run file."""

    def __init__(self, path: str, block: int) -> None:
        self._gen = _iter_file_int64(path, block)
        self.buf = np.empty(0, dtype=np.int64)
        self._eof = False
        self._fill()

    def _fill(self) -> None:
        while not self._eof and self.buf.size == 0:
            nxt = next(self._gen, None)
            if nxt is None:
                self._eof = True
            else:
                self.buf = nxt

    @property
    def exhausted(self) -> bool:
        return self._eof and self.buf.size == 0

    def take(self, k: int) -> np.ndarray:
        out = self.buf[:k]
        self.buf = self.buf[k:]
        self._fill()
        return out


def _merge_two(path_a: str, path_b: str, out_path: str, block: int) -> int:
    """Merge two sorted key runs into one, deduplicating; returns the
    output length.  Streams in ``block``-value windows: memory is O(block)."""
    ra, rb = _RunReader(path_a, block), _RunReader(path_b, block)
    last: Optional[int] = None
    written = 0
    with open(out_path, "wb") as fo:

        def emit(part: np.ndarray) -> None:
            nonlocal last, written
            if part.size == 0:
                return
            keep = np.empty(part.size, dtype=bool)
            keep[0] = last is None or int(part[0]) != last
            keep[1:] = part[1:] != part[:-1]
            part = part[keep]
            if part.size:
                _merge_chunk(fo, part)
                last = int(part[-1])
                written += part.size

        while not ra.exhausted and not rb.exhausted:
            bound = min(int(ra.buf[-1]), int(rb.buf[-1]))
            ia = int(np.searchsorted(ra.buf, bound, side="right"))
            ib = int(np.searchsorted(rb.buf, bound, side="right"))
            part = np.concatenate([ra.take(ia), rb.take(ib)])
            part.sort()
            emit(part)
        for reader in (ra, rb):
            while not reader.exhausted:
                emit(reader.take(reader.buf.size))
    return written


def _merge_runs(
    runs: list[str], workdir: str, block: int, tag: str, progress=None
) -> tuple[str, int]:
    """Pairwise-merge sorted runs down to one file; returns (path, len)."""
    if not runs:
        empty = os.path.join(workdir, f"{tag}.empty.bin")
        open(empty, "wb").close()
        return empty, 0
    size = -1
    generation = 0
    while len(runs) > 1:
        if progress:
            progress(f"merge[{tag}]: {len(runs)} runs")
        merged: list[str] = []
        for i in range(0, len(runs) - 1, 2):
            out = os.path.join(workdir, f"{tag}.m{generation}.{i // 2}.bin")
            size = _merge_two(runs[i], runs[i + 1], out, block)
            os.unlink(runs[i])
            os.unlink(runs[i + 1])
            merged.append(out)
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
        generation += 1
    if size < 0:  # single run: already sorted + deduplicated at spill
        size = os.path.getsize(runs[0]) // 8
    return runs[0], size


# -- key packing -----------------------------------------------------------


def _check_universe(n_nodes: int, n_predicates: int) -> None:
    if n_nodes * n_nodes * max(n_predicates, 1) > _KEY_LIMIT:
        raise BulkBuildError(
            f"universe too large for int64 triple keys: "
            f"{n_nodes}^2 * {n_predicates} > 2^63-1"
        )


def _spo_keys(rows: np.ndarray, n_nodes: int, n_predicates: int) -> np.ndarray:
    return (rows[:, S] * n_predicates + rows[:, P]) * n_nodes + rows[:, O]


def _decode_spo(keys: np.ndarray, n_nodes: int, n_predicates: int):
    o = keys % n_nodes
    sp = keys // n_nodes
    return sp // n_predicates, sp % n_predicates, o


# -- source normalization --------------------------------------------------


def _blocks_from_text(path: str, chunk: int, parse_labels: bool):
    """Yield (block, dictionary) from a text source; ``dictionary`` is
    None for id-level files and grows incrementally for ``.nt``."""
    if parse_labels:
        dictionary = Dictionary()
        rows: list[tuple[int, int, int]] = []
        with open(path, encoding="utf-8") as f:
            for s, p, o in iter_ntriples(f, source=path):
                rows.append(
                    (
                        dictionary.add_node(s),
                        dictionary.add_predicate(p),
                        dictionary.add_node(o),
                    )
                )
                if len(rows) >= chunk:
                    yield np.array(rows, dtype=np.int64), dictionary
                    rows = []
        if rows:
            yield np.array(rows, dtype=np.int64), dictionary
        elif dictionary.n_nodes or dictionary.n_predicates:
            yield np.empty((0, 3), dtype=np.int64), dictionary
    else:
        rows = []
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise BulkBuildError(f"malformed triple line: {line!r}")
                rows.append((int(parts[0]), int(parts[1]), int(parts[2])))
                if len(rows) >= chunk:
                    yield np.array(rows, dtype=np.int64), None
                    rows = []
        if rows:
            yield np.array(rows, dtype=np.int64), None


def _blocks_from_bin(path: str, chunk: int):
    """Raw little-endian int64 ``(n, 3)`` row-major triples."""
    size = os.path.getsize(path)
    if size % 24:
        raise BulkBuildError(
            f"{path}: raw triple file size {size} is not a multiple of 24"
        )
    with open(path, "rb") as f:
        while True:
            arr = np.fromfile(f, dtype=np.int64, count=chunk * 3)
            if arr.size == 0:
                return
            yield arr.reshape(-1, 3), None


def _source_blocks(source, chunk: int):
    """Normalize any supported source into (block, dictionary) pairs."""
    if isinstance(source, Graph):
        triples = source.triples
        if len(triples) == 0:
            yield np.empty((0, 3), dtype=np.int64), source.dictionary
        for start in range(0, len(triples), chunk):
            yield triples[start : start + chunk], source.dictionary
        return
    if isinstance(source, (str, os.PathLike)):
        path = str(source)
        if not os.path.exists(path):
            raise BulkBuildError(f"source {path!r} does not exist")
        if path.endswith(".nt"):
            yield from _blocks_from_text(path, chunk, parse_labels=True)
        elif path.endswith(".bin"):
            yield from _blocks_from_bin(path, chunk)
        elif path.endswith(".npy"):
            mm = np.load(path, mmap_mode="r")
            if mm.ndim != 2 or mm.shape[1] != 3:
                raise BulkBuildError(f"{path}: expected an (n, 3) array")
            for start in range(0, len(mm), chunk):
                yield np.asarray(mm[start : start + chunk], dtype=np.int64), None
        else:
            yield from _blocks_from_text(path, chunk, parse_labels=False)
        return
    if isinstance(source, Iterable):
        pending: list[np.ndarray] = []
        count = 0
        for item in source:
            arr = np.asarray(item, dtype=np.int64)
            if arr.ndim == 1:
                arr = arr.reshape(1, 3)
            if arr.ndim != 2 or arr.shape[1] != 3:
                raise BulkBuildError("iterable items must be (k, 3) blocks")
            for start in range(0, len(arr), chunk):
                pending.append(arr[start : start + chunk])
                count += len(pending[-1])
                if count >= chunk:
                    yield np.concatenate(pending), None
                    pending, count = [], 0
        if pending:
            yield np.concatenate(pending), None
        return
    raise BulkBuildError(f"unsupported source type {type(source).__name__}")


# -- wavelet + counts passes -----------------------------------------------


def _build_wavelet_streaming(
    writer: PackWriter,
    zone: int,
    key_path: str,
    transform,
    n: int,
    sigma: int,
    workdir: str,
    chunk: int,
) -> dict:
    """One zone's wavelet matrix, level by level, out of core.

    ``transform`` decodes the zone's symbol column from the sorted key
    stream at level 0; deeper levels read the scratch partitions of the
    previous one.  Returns the zone's manifest metadata block.
    """
    levels = max(1, (sigma - 1).bit_length())
    zeros_list: list[int] = []
    level_meta: list[dict] = []
    inputs: list[str] = [key_path]
    input_transform = transform
    nwords = -(-max(n, 1) // 64)
    for level in range(levels):
        shift = levels - 1 - level
        words = np.zeros(nwords, dtype=np.uint64)
        wbytes = words.view(np.uint8)
        zero_path = os.path.join(workdir, f"wm{zone}.l{level}.part0.bin")
        one_path = os.path.join(workdir, f"wm{zone}.l{level}.part1.bin")
        zeros = 0
        byte_pos = 0
        last_level = level == levels - 1
        with open(zero_path, "wb") as zf, open(one_path, "wb") as of:
            for vals in _iter_files_aligned(inputs, chunk, input_transform):
                bits = ((vals >> shift) & 1).astype(np.uint8)
                packed = np.packbits(bits, bitorder="little")
                wbytes[byte_pos : byte_pos + packed.size] = packed
                byte_pos += packed.size
                mask = bits.view(bool)
                if not last_level:  # the bottom partition feeds nothing
                    vals[~mask].tofile(zf)
                    vals[mask].tofile(of)
                    zeros += int(vals.size - mask.sum())
                else:
                    zeros += int(vals.size - mask.sum())
        bv = BitVector.from_packed_words(words, n)
        prefix = f"wm{zone}.l{level}"
        writer.add_array(f"{prefix}.words", bv._words)
        writer.add_array(f"{prefix}.super", bv._super)
        writer.add_array(f"{prefix}.rel", bv._rel)
        zeros_list.append(zeros)
        level_meta.append({"n": n, "ones": bv._ones})
        for path in inputs:
            if path != key_path:
                os.unlink(path)
        inputs = [zero_path, one_path]
        input_transform = None
    for path in inputs:
        if path != key_path and os.path.exists(path):
            os.unlink(path)
    return {
        "n": n,
        "sigma": sigma,
        "levels": levels,
        "zeros": zeros_list,
        "level_meta": level_meta,
    }


def _counts_from_keys(
    key_path: str, chunk: int, decode, sigma: int
) -> np.ndarray:
    """Streaming ``counts_from_column``: cumulative counts, length σ+1.

    Working memory is exactly one σ+1 accumulator plus O(chunk)
    temporaries: each chunk's column is run-length encoded
    (``np.unique``) so the scatter-add touches only the values present,
    where a ``bincount`` per chunk would allocate a *second* σ-sized
    array every iteration — at σ = 3 M nodes that one temporary is
    24 MB, the difference between passing and blowing the build's
    RSS-over-index gate.  The final prefix sum runs in place.
    """
    out = np.zeros(sigma + 1, dtype=np.int64)
    if sigma:
        acc = out[1:]
        for keys in _iter_file_int64(key_path, chunk):
            values, counts = np.unique(decode(keys), return_counts=True)
            acc[values] += counts
        np.cumsum(acc, out=acc)
    return out


def _external_sort(
    src_path: str,
    repack,
    workdir: str,
    chunk: int,
    tag: str,
    progress=None,
) -> str:
    """Re-sort a key stream under a different key packing, out of core."""
    runs: list[str] = []
    for i, keys in enumerate(_iter_file_int64(src_path, chunk)):
        new_keys = repack(keys)
        new_keys.sort()
        run = os.path.join(workdir, f"{tag}.run{i}.bin")
        _spill_run(run, new_keys)
        runs.append(run)
    path, _ = _merge_runs(runs, workdir, chunk, tag, progress)
    return path


# -- the builder -----------------------------------------------------------


def bulk_build(
    source,
    out_path,
    *,
    chunk_triples: int = 1_000_000,
    n_nodes: Optional[int] = None,
    n_predicates: Optional[int] = None,
    spill_dir: Optional[str] = None,
    leap_memo_size: int = 1 << 16,
    progress=None,
    stats: Optional[dict] = None,
) -> dict:
    """Stream-build a frozen ring pack at ``out_path``; returns the manifest.

    ``source`` may be a ``.nt`` file (labels, dictionary built
    incrementally), a ``.bin`` file (raw int64 ``(n, 3)`` rows), a
    ``.npy`` array, an id-text file (``s p o`` per line), a
    :class:`Graph`, or any iterable of rows/blocks.  ``chunk_triples``
    bounds the scan/sort working set; ``n_nodes``/``n_predicates`` pin
    the universes (inferred from the data when omitted, exactly like
    :class:`Graph`).  All spill files live in a private directory under
    ``spill_dir`` (default: next to ``out_path``) and are removed on
    exit; the pack itself appears atomically.  ``stats`` (a dict, if
    given) receives build counters.  Failures raise
    :class:`BulkBuildError` and leave no partial pack behind.
    """
    out_path = str(out_path)
    if chunk_triples < 1:
        raise ValueError("chunk_triples must be positive")
    chunk = int(chunk_triples)
    parent = spill_dir or (os.path.dirname(os.path.abspath(out_path)) or ".")
    os.makedirs(parent, exist_ok=True)
    workdir = tempfile.mkdtemp(prefix=".bulkload-", dir=parent)
    if stats is None:
        stats = {}
    stats.update(input_triples=0, runs_spilled=0, phase="scan")
    writer: Optional[PackWriter] = None
    try:
        # Phase 1: scan + chunked sorted runs.  Runs hold packed keys
        # when the universes are pinned upfront (1/3 the bytes of rows),
        # sorted rows otherwise (keys need N and P).
        keyed = n_nodes is not None and n_predicates is not None
        if keyed:
            _check_universe(int(n_nodes), int(n_predicates))
        dictionary: Optional[Dictionary] = None
        max_node = -1
        max_pred = -1
        runs: list[str] = []
        pending: list[np.ndarray] = []
        pending_rows = 0

        def flush_pending() -> None:
            nonlocal pending, pending_rows
            if not pending_rows:
                pending = []
                return
            block = np.concatenate(pending) if len(pending) > 1 else pending[0]
            pending, pending_rows = [], 0
            if len(block) and block.min() < 0:
                raise BulkBuildError("ids must be non-negative")
            run = os.path.join(workdir, f"scan.run{len(runs)}.bin")
            if keyed:
                if len(block) and (
                    int(block[:, S].max()) >= n_nodes
                    or int(block[:, O].max()) >= n_nodes
                    or int(block[:, P].max()) >= n_predicates
                ):
                    raise BulkBuildError("id outside the pinned universes")
                keys = _spo_keys(block, int(n_nodes), int(n_predicates))
                keys.sort()
                if keys.size:
                    keys = keys[np.concatenate(([True], keys[1:] != keys[:-1]))]
                _spill_run(run, keys)
            else:
                order = np.lexsort((block[:, O], block[:, P], block[:, S]))
                block = block[order]
                if len(block):
                    uniq = np.concatenate(
                        ([True], np.any(block[1:] != block[:-1], axis=1))
                    )
                    block = block[uniq]
                _spill_run(run, block)
            runs.append(run)
            stats["runs_spilled"] += 1

        for block, block_dict in _source_blocks(source, chunk):
            if block_dict is not None:
                dictionary = block_dict
            if not len(block):
                continue
            stats["input_triples"] += len(block)
            if not keyed:
                if len(block):
                    max_node = max(
                        max_node,
                        int(block[:, S].max()),
                        int(block[:, O].max()),
                    )
                    max_pred = max(max_pred, int(block[:, P].max()))
            pending.append(np.ascontiguousarray(block, dtype=np.int64))
            pending_rows += len(block)
            if pending_rows >= chunk:
                flush_pending()
        flush_pending()

        # Universe resolution (mirrors Graph's inference exactly).
        if dictionary is not None:
            N, Pn = dictionary.n_nodes, dictionary.n_predicates
            if n_nodes is not None and n_nodes != N:
                raise BulkBuildError(
                    "explicit n_nodes conflicts with the dictionary"
                )
            if n_predicates is not None and n_predicates != Pn:
                raise BulkBuildError(
                    "explicit n_predicates conflicts with the dictionary"
                )
        elif keyed:
            N, Pn = int(n_nodes), int(n_predicates)
        else:
            N = int(n_nodes) if n_nodes is not None else max_node + 1
            Pn = (
                int(n_predicates)
                if n_predicates is not None
                else max_pred + 1
            )
            if max_node >= N or max_pred >= Pn:
                raise BulkBuildError("id outside the declared universes")
        _check_universe(N, Pn)

        # Phase 2: merge to the canonical deduplicated spo key stream.
        # Everything from here on streams sorted files: buffers shrink
        # to _STREAM_BLOCK regardless of the scan chunk (see above).
        stats["phase"] = "merge"
        io_block = max(64, min(chunk, _STREAM_BLOCK))
        if not keyed and runs:
            # Row runs become key runs now that N and P are known.
            key_runs = []
            for i, run in enumerate(runs):
                krun = os.path.join(workdir, f"scan.keys{i}.bin")
                with open(krun, "wb") as kf:
                    for rows in _iter_file_int64(run, io_block * 3):
                        _merge_chunk(kf, _spo_keys(rows.reshape(-1, 3), N, Pn))
                os.unlink(run)
                key_runs.append(krun)
            runs = key_runs
        spo_path, n = _merge_runs(runs, workdir, io_block, "spo", progress)
        stats["n_triples"] = n
        stats["deduplicated"] = stats["input_triples"] - n
        if progress:
            progress(f"canonical stream: {n} triples")

        # Phase 3: derive the (p,o,s) and (o,s,p) orders.
        stats["phase"] = "resort"

        def to_pos(keys: np.ndarray) -> np.ndarray:
            s, p, o = _decode_spo(keys, N, Pn)
            return (p * N + o) * N + s

        def to_osp(keys: np.ndarray) -> np.ndarray:
            s, p, o = _decode_spo(keys, N, Pn)
            return (o * N + s) * Pn + p

        pos_path = _external_sort(
            spo_path, to_pos, workdir, io_block, "pos", progress
        )
        osp_path = _external_sort(
            spo_path, to_osp, workdir, io_block, "osp", progress
        )

        # Phase 4: wavelet matrices, written straight into the pack.
        stats["phase"] = "wavelet"
        writer = PackWriter(out_path)
        sigma = {S: N, P: Pn, O: N}
        wm_meta = {
            S: _build_wavelet_streaming(
                writer, S, spo_path,
                lambda keys: keys % max(N, 1),  # spo key % N == o
                n, sigma[O], workdir, io_block,
            ),
            P: _build_wavelet_streaming(
                writer, P, pos_path,
                lambda keys: keys % max(N, 1),
                n, sigma[S], workdir, io_block,
            ),
            O: _build_wavelet_streaming(
                writer, O, osp_path,
                lambda keys: keys % max(Pn, 1),
                n, sigma[P], workdir, io_block,
            ),
        }
        os.unlink(pos_path)
        os.unlink(osp_path)

        # Phase 5: C arrays by streaming bincount over the canonical stream.
        # Single-column decoders: ``_decode_spo`` materialises all three
        # columns (five chunk-sized temporaries) when each pass needs
        # exactly one — with ``key = (s*P + p)*N + o`` every column is
        # one division/modulo away.
        stats["phase"] = "counts"
        decoders = {
            S: lambda keys: keys // (N * Pn) if N * Pn else keys,
            P: lambda keys: (keys // N) % Pn if N and Pn else keys,
            O: lambda keys: keys % N if N else keys,
        }
        for attr in (S, P, O):
            c = _counts_from_keys(
                spo_path, io_block, decoders[attr], sigma[attr]
            )
            writer.add_array(f"c{attr}", c)
        table = writer.table
        size = writer.finish()
        writer = None
        stats["phase"] = "manifest"
        meta = {
            "n": n,
            "sigma": (N, Pn, N),
            "leap_memo_size": int(leap_memo_size),
            "wm": wm_meta,
        }
        manifest = write_pack_manifest(
            out_path,
            meta=meta,
            table=table,
            file_size=size,
            n_nodes=N,
            n_predicates=Pn,
            dictionary=dictionary,
        )
        stats["phase"] = "done"
        stats["pack_bytes"] = size
        return manifest
    except BulkBuildError:
        raise
    except Exception as exc:
        raise BulkBuildError(
            f"bulk build failed during {stats.get('phase')}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    finally:
        if writer is not None:
            writer.abort()
        shutil.rmtree(workdir, ignore_errors=True)
