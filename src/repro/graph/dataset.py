"""The :class:`Graph` container: dictionary-encoded, sorted, deduplicated.

A :class:`Graph` owns an ``(n, 3)`` integer array of triples (sorted by
``(s, p, o)``, duplicates removed — the paper's graphs are *sets* of
triples) plus an optional :class:`~repro.graph.dictionary.Dictionary`.
Every index in :mod:`repro.core` and :mod:`repro.baselines` is built from
a :class:`Graph` and operates on ids; this class also handles
encoding/decoding of patterns and solutions at the string level.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.graph.dictionary import Dictionary
from repro.graph.model import O, P, S, BasicGraphPattern, Triple, TriplePattern, Var


class Graph:
    """An immutable set of dictionary-encoded triples."""

    def __init__(
        self,
        triples: np.ndarray,
        n_nodes: int | None = None,
        n_predicates: int | None = None,
        dictionary: Dictionary | None = None,
    ) -> None:
        arr = np.asarray(triples, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError("triples must form an (n, 3) array")
        if len(arr) and arr.min() < 0:
            raise ValueError("ids must be non-negative")
        arr = np.unique(arr, axis=0) if len(arr) else arr.reshape(0, 3)
        self._triples = arr
        if dictionary is not None:
            n_nodes = dictionary.n_nodes
            n_predicates = dictionary.n_predicates
        if n_nodes is None:
            n_nodes = int(max(arr[:, S].max(), arr[:, O].max())) + 1 if len(arr) else 0
        if n_predicates is None:
            n_predicates = int(arr[:, P].max()) + 1 if len(arr) else 0
        if len(arr):
            if max(int(arr[:, S].max()), int(arr[:, O].max())) >= n_nodes:
                raise ValueError("node id outside [0, n_nodes)")
            if int(arr[:, P].max()) >= n_predicates:
                raise ValueError("predicate id outside [0, n_predicates)")
        self._n_nodes = n_nodes
        self._n_predicates = n_predicates
        self._dictionary = dictionary

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_string_triples(
        cls, triples: Iterable[tuple[str, str, str]]
    ) -> "Graph":
        """Build a graph (and its dictionary) from labelled triples."""
        materialised = list(triples)
        dictionary = Dictionary.from_triples(materialised)
        encoded = np.array(
            [
                (
                    dictionary.node_id(s),
                    dictionary.predicate_id(p),
                    dictionary.node_id(o),
                )
                for s, p, o in materialised
            ],
            dtype=np.int64,
        ).reshape(-1, 3)
        return cls(encoded, dictionary=dictionary)

    @classmethod
    def from_file(cls, path: str) -> "Graph":
        """Load whitespace-separated ``s p o`` lines (``#`` comments ok)."""
        triples = []
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise ValueError(f"malformed triple line: {line!r}")
                triples.append(tuple(parts))
        return cls.from_string_triples(triples)

    # -- basic access ----------------------------------------------------------

    @property
    def triples(self) -> np.ndarray:
        """The ``(n, 3)`` sorted id array (do not mutate)."""
        return self._triples

    @property
    def n_triples(self) -> int:
        return len(self._triples)

    @property
    def n_nodes(self) -> int:
        """Size of the shared subject/object universe."""
        return self._n_nodes

    @property
    def n_predicates(self) -> int:
        return self._n_predicates

    @property
    def dictionary(self) -> Optional[Dictionary]:
        return self._dictionary

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        for row in self._triples:
            yield (int(row[0]), int(row[1]), int(row[2]))

    def __contains__(self, triple) -> bool:
        t = np.asarray(triple, dtype=np.int64)
        idx = np.searchsorted(
            self._view_sorted(), self._key(t[0], t[1], t[2])
        )
        return idx < len(self._triples) and self._view_sorted()[idx] == self._key(
            t[0], t[1], t[2]
        )

    def _key(self, s: int, p: int, o: int) -> int:
        return (int(s) * self._n_predicates + int(p)) * self._n_nodes + int(o)

    def _view_sorted(self) -> np.ndarray:
        # Triples are spo-sorted, so the combined key is sorted too.
        t = self._triples
        return (t[:, S] * self._n_predicates + t[:, P]) * self._n_nodes + t[:, O]

    def labelled_triples(self) -> Iterator[tuple[str, str, str]]:
        """Decode every triple back to labels (requires a dictionary)."""
        d = self._require_dictionary()
        for s, p, o in self:
            yield (d.node_label(s), d.predicate_label(p), d.node_label(o))

    # -- pattern encoding ---------------------------------------------------------

    def encode_pattern(self, pattern: TriplePattern) -> Optional[TriplePattern]:
        """Translate string constants to ids; ``None`` if any is unknown
        (such a pattern matches nothing)."""
        d = self._dictionary
        terms = []
        for pos, term in enumerate(pattern.terms):
            if isinstance(term, Var):
                terms.append(term)
            elif isinstance(term, int):
                terms.append(term)
            else:
                if d is None:
                    raise ValueError(
                        "string constants require a dictionary-backed graph"
                    )
                try:
                    terms.append(
                        d.predicate_id(term) if pos == P else d.node_id(term)
                    )
                except KeyError:
                    return None
        return TriplePattern(*terms)

    def encode_bgp(
        self, bgp: BasicGraphPattern
    ) -> Optional[BasicGraphPattern]:
        """Encode every pattern; ``None`` when some constant is unknown."""
        encoded = []
        for pattern in bgp:
            enc = self.encode_pattern(pattern)
            if enc is None:
                return None
            encoded.append(enc)
        return BasicGraphPattern(encoded)

    def variable_roles(self, bgp: BasicGraphPattern) -> dict[Var, int]:
        """Position (S/P/O) from which each variable should be decoded."""
        roles: dict[Var, int] = {}
        for pattern in bgp:
            for pos, term in enumerate(pattern.terms):
                if isinstance(term, Var) and term not in roles:
                    roles[term] = pos
        return roles

    def decode_solution(
        self, solution: dict[Var, int], roles: dict[Var, int]
    ) -> dict[str, str]:
        """Translate an id-level solution to labels."""
        d = self._require_dictionary()
        out = {}
        for var, value in solution.items():
            if roles.get(var, S) == P:
                out[var.name] = d.predicate_label(value)
            else:
                out[var.name] = d.node_label(value)
        return out

    def _require_dictionary(self) -> Dictionary:
        if self._dictionary is None:
            raise ValueError("this graph has no dictionary")
        return self._dictionary

    # -- space accounting ------------------------------------------------------------

    def plain_size_in_bits(self) -> int:
        """The "simple representation": three 32-bit words per triple."""
        return 3 * 32 * self.n_triples

    def packed_size_in_bits(self) -> int:
        """The paper's packed yardstick: ``2*ceil(log2 |nodes|) +
        ceil(log2 |preds|)`` bits per triple."""
        node_bits = max(1, (max(self._n_nodes - 1, 0)).bit_length())
        pred_bits = max(1, (max(self._n_predicates - 1, 0)).bit_length())
        return (2 * node_bits + pred_bits) * self.n_triples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(n={self.n_triples}, nodes={self._n_nodes}, "
            f"predicates={self._n_predicates})"
        )
