"""Dictionary encoding of graph constants.

Maps the constants of ``dom(G)`` to consecutive integers as §3.1 requires.
Following the paper's §4.1 (and its WGPB setup, which uses "a common
alphabet" for the 4.9 M identifiers that act as both subject and object),
nodes — subjects and objects — share one id space, while predicates get an
independent, typically much smaller, id space.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Dictionary:
    """Bidirectional string↔id mapping with separate node/predicate spaces."""

    def __init__(self) -> None:
        self._node_ids: dict[str, int] = {}
        self._nodes: list[str] = []
        self._pred_ids: dict[str, int] = {}
        self._preds: list[str] = []

    # -- encoding ----------------------------------------------------------

    def add_node(self, label: str) -> int:
        """Intern a subject/object label, returning its id."""
        node_id = self._node_ids.get(label)
        if node_id is None:
            node_id = len(self._nodes)
            self._node_ids[label] = node_id
            self._nodes.append(label)
        return node_id

    def add_predicate(self, label: str) -> int:
        """Intern a predicate label, returning its id."""
        pred_id = self._pred_ids.get(label)
        if pred_id is None:
            pred_id = len(self._preds)
            self._pred_ids[label] = pred_id
            self._preds.append(label)
        return pred_id

    # -- lookup ------------------------------------------------------------

    def node_id(self, label: str) -> int:
        """Id of a node label; raises ``KeyError`` if unknown."""
        return self._node_ids[label]

    def predicate_id(self, label: str) -> int:
        """Id of a predicate label; raises ``KeyError`` if unknown."""
        return self._pred_ids[label]

    def node_label(self, node_id: int) -> str:
        return self._nodes[node_id]

    def predicate_label(self, pred_id: int) -> str:
        return self._preds[pred_id]

    def has_node(self, label: str) -> bool:
        return label in self._node_ids

    def has_predicate(self, label: str) -> bool:
        return label in self._pred_ids

    # -- stats -------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Size of the shared subject/object alphabet."""
        return len(self._nodes)

    @property
    def n_predicates(self) -> int:
        """Size of the predicate alphabet."""
        return len(self._preds)

    def nodes(self) -> Iterator[str]:
        return iter(self._nodes)

    def predicates(self) -> Iterator[str]:
        return iter(self._preds)

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[str, str, str]]) -> "Dictionary":
        """Build a dictionary covering every constant of ``triples``."""
        d = cls()
        for s, p, o in triples:
            d.add_node(s)
            d.add_predicate(p)
            d.add_node(o)
        return d

    def size_in_bits(self) -> int:
        """UTF-8 label bytes plus one 64-bit pointer per entry.

        The paper's systems-vs-ring comparison excludes dictionaries on
        both sides (all in-memory wco systems receive dictionary-encoded
        ids); we account for it anyway so users can see the full cost.
        """
        label_bytes = sum(len(s.encode()) for s in self._nodes)
        label_bytes += sum(len(s.encode()) for s in self._preds)
        return 8 * label_bytes + 64 * (len(self._nodes) + len(self._preds))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dictionary(nodes={self.n_nodes}, predicates={self.n_predicates})"
