"""A minimal textual syntax for basic graph patterns.

Grammar (SPARQL-flavoured, whitespace-tokenised)::

    bgp     := pattern ( "." pattern )*
    pattern := term term term
    term    := "?" NAME          -- variable
             | NAME              -- constant label

Example::

    parse_bgp("?x adv ?y . Nobel win ?x")

yields the Figure 4 query of the paper (modulo naming).
"""

from __future__ import annotations

from repro.graph.model import BasicGraphPattern, Term, TriplePattern, Var


def parse_term(token: str) -> Term:
    """Parse one token into a variable or a string constant."""
    if token.startswith("?"):
        if len(token) == 1:
            raise ValueError("variable needs a name after '?'")
        return Var(token[1:])
    return token


def parse_bgp(text: str) -> BasicGraphPattern:
    """Parse a textual basic graph pattern.

    Raises ``ValueError`` on malformed input (wrong arity, empty query).
    """
    patterns = []
    for chunk in text.split("."):
        tokens = chunk.split()
        if not tokens:
            continue
        if len(tokens) != 3:
            raise ValueError(
                f"each pattern needs exactly 3 terms, got {len(tokens)}: {chunk!r}"
            )
        patterns.append(TriplePattern(*(parse_term(t) for t in tokens)))
    if not patterns:
        raise ValueError("empty basic graph pattern")
    return BasicGraphPattern(patterns)
