"""Graph data model: triples, patterns, dictionaries, datasets, generators.

This subpackage supplies the relational view of graphs of §2.1: a graph is
a set of ``(subject, predicate, object)`` triples over a totally ordered
universe of constants, and queries are *basic graph patterns* — sets of
triple patterns mixing constants and variables.

Identifier layout follows the paper's §4.1 engineering: subjects and
objects share one dense id space (so a node keeps one id whether it
appears as source or target), predicates get their own smaller id space.
"""

from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary
from repro.graph.model import (
    BasicGraphPattern,
    Triple,
    TriplePattern,
    Var,
)
from repro.graph.parser import parse_bgp

__all__ = [
    "BasicGraphPattern",
    "Dictionary",
    "Graph",
    "Triple",
    "TriplePattern",
    "Var",
    "parse_bgp",
]
