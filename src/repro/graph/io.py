"""Persistence for graphs and indexes.

Graphs serialise to a single ``.npz`` (triple array + universes +
optional dictionary labels).  Index classes persist their *source graph
and configuration* and rebuild on load: ring construction is linear-ish
and fast (§4.4 reports 6.4 M triples/minute for the C++ version; our
numpy construction path keeps the same shape), so rebuilding is cheaper
than shipping the wavelet internals and keeps the on-disk format
trivially stable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graph.dataset import Graph
from repro.graph.dictionary import Dictionary


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write a graph (and its dictionary, if any) to ``path`` (.npz)."""
    payload: dict = {
        "triples": graph.triples,
        "n_nodes": np.array([graph.n_nodes], dtype=np.int64),
        "n_predicates": np.array([graph.n_predicates], dtype=np.int64),
    }
    d = graph.dictionary
    if d is not None:
        meta = {
            "nodes": list(d.nodes()),
            "predicates": list(d.predicates()),
        }
        payload["dictionary_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
    np.savez_compressed(str(path), **payload)


def load_graph(path: str | Path) -> Graph:
    """Inverse of :func:`save_graph`."""
    with np.load(str(path)) as data:
        triples = data["triples"]
        n_nodes = int(data["n_nodes"][0])
        n_predicates = int(data["n_predicates"][0])
        dictionary = None
        if "dictionary_json" in data:
            meta = json.loads(bytes(data["dictionary_json"]).decode())
            dictionary = Dictionary()
            for label in meta["nodes"]:
                dictionary.add_node(label)
            for label in meta["predicates"]:
                dictionary.add_predicate(label)
    if dictionary is not None:
        return Graph(triples, dictionary=dictionary)
    return Graph(triples, n_nodes=n_nodes, n_predicates=n_predicates)
