"""Burrows–Wheeler transform, backward search, and the bended BWT.

Implements §2.3.3 and Definition 3.1 of the paper with 0-based indexing:

- ``bwt_from_suffix_array``: ``BWT[i] = T[A[i] - 1]`` (``T[n-1]`` when
  ``A[i] = 0``);
- ``count_array``: the ``C`` array with ``C[c]`` = number of symbols
  smaller than ``c`` in the string;
- ``lf_step``: Eq. (1), ``LF(i) = C[BWT[i]] + rank_{BWT[i]}(BWT, i)``;
- ``backward_search``: Eq. (2), mapping a pattern to its suffix-array
  range;
- ``bended_bwt``: Definition 3.1 — for the 3n+1-symbol triple text
  ``T = s1 p1 o1 … sn pn on $`` (triples sorted, alphabet stratified as
  subjects < predicates < objects < $), the bend moves each object into
  the slot of its own triple so that LF steps cycle within triples
  (Lemma 3.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def bwt_from_suffix_array(text, sa) -> np.ndarray:
    """BWT of ``text`` given its suffix array."""
    arr = np.asarray(text, dtype=np.int64)
    sa = np.asarray(sa, dtype=np.int64)
    return arr[(sa - 1) % len(arr)]


def count_array(text, sigma: int | None = None) -> np.ndarray:
    """``C[c]`` = number of symbols strictly smaller than ``c``.

    Returned with length ``sigma + 1`` so ``C[c+1] - C[c]`` is the number
    of occurrences of ``c`` and ``[C[c], C[c+1])`` is symbol ``c``'s bucket
    in the suffix array.
    """
    arr = np.asarray(text, dtype=np.int64)
    if sigma is None:
        sigma = int(arr.max()) + 1 if len(arr) else 1
    counts = np.bincount(arr, minlength=sigma)
    c = np.zeros(sigma + 1, dtype=np.int64)
    np.cumsum(counts, out=c[1:])
    return c


def _rank(bwt: Sequence[int], symbol: int, i: int) -> int:
    """Naive rank for the verification-oriented functions of this module."""
    arr = np.asarray(bwt)
    return int(np.count_nonzero(arr[:i] == symbol))


def lf_step(bwt, c: np.ndarray, i: int) -> int:
    """One LF step (Eq. 1): position of ``T[j-1]`` given ``BWT[i] = T[j]``."""
    symbol = int(bwt[i])
    return int(c[symbol]) + _rank(bwt, symbol, i + 1) - 1


def backward_search(
    bwt, c: np.ndarray, pattern: Sequence[int]
) -> Optional[tuple[int, int]]:
    """Suffix-array range ``[s, e)`` of suffixes prefixed by ``pattern``.

    Implements Eq. (2).  Returns ``None`` when the pattern does not occur.
    """
    if len(pattern) == 0:
        return 0, len(np.asarray(bwt))
    sigma = len(c) - 1
    last = int(pattern[-1])
    if not 0 <= last < sigma:
        return None
    s, e = int(c[last]), int(c[last + 1])
    for symbol in reversed(pattern[:-1]):
        symbol = int(symbol)
        if not 0 <= symbol < sigma or s >= e:
            return None
        s = int(c[symbol]) + _rank(bwt, symbol, s)
        e = int(c[symbol]) + _rank(bwt, symbol, e)
    return (s, e) if s < e else None


def triple_text(sorted_triples: np.ndarray, universe: int) -> np.ndarray:
    """Concatenate sorted *shifted* triples and append the ``$`` sentinel.

    ``sorted_triples`` is an ``(n, 3)`` array of raw ids in ``[0, U)``;
    the function applies the paper's shifts (``p + U``, ``o + 2U``) and
    appends ``$ = 3U`` (the largest symbol).
    """
    t = np.asarray(sorted_triples, dtype=np.int64)
    if t.ndim != 2 or t.shape[1] != 3:
        raise ValueError("expected an (n, 3) array of triples")
    shifted = t + np.array([0, universe, 2 * universe], dtype=np.int64)
    flat = shifted.reshape(-1)
    return np.concatenate([flat, [3 * universe]])


def bended_bwt(text: np.ndarray) -> np.ndarray:
    """The bended BWT of Definition 3.1 (0-based).

    ``text`` must be a triple text of length ``3n + 1`` built by
    :func:`triple_text` (sorted triples, stratified alphabet, sentinel).
    Definition 3.1 (1-based) reads::

        BWT*[1..3n] = BWT[2..n] · BWT[3n+1] · BWT[n+1..3n]

    which in 0-based slices is ``BWT[1:n] + BWT[3n] + BWT[n:3n]``.
    """
    n3 = len(text) - 1
    if n3 % 3:
        raise ValueError("triple text must have length 3n + 1")
    n = n3 // 3
    from repro.text.suffix_array import suffix_array

    sa = suffix_array(text)
    bwt = bwt_from_suffix_array(text, sa)
    return np.concatenate([bwt[1:n], [bwt[3 * n]], bwt[n : 3 * n]])


def bended_lf(bwt_star: np.ndarray, c: np.ndarray, i: int) -> int:
    """LF over the bended BWT (``LF*`` of Lemma 3.3), 0-based.

    ``c`` must be the count array of the *text without the sentinel*
    (the bended BWT contains no ``$``).
    """
    symbol = int(bwt_star[i])
    return int(c[symbol]) + _rank(bwt_star, symbol, i + 1) - 1
