"""Text-indexing primitives: suffix arrays, BWT, bended BWT.

These implement §2.3 and §3.1 of the paper *literally*: a suffix array
over the shifted triple text ``T = s1 p1 o1 … sn pn on $``, its
Burrows–Wheeler transform, backward search, and the *bended* BWT of
Definition 3.1 that regards the triples as cyclic strings.

The production ring (:mod:`repro.core.ring`) builds its three BWT
components directly by sorting (see DESIGN.md §6.1) — the functions here
exist to *verify* that shortcut against the textbook definitions
(Lemma 3.3) and to reproduce the paper's Figure 6 exactly in the tests.
"""

from repro.text.bwt import (
    backward_search,
    bended_bwt,
    bwt_from_suffix_array,
    count_array,
    lf_step,
)
from repro.text.suffix_array import suffix_array

__all__ = [
    "backward_search",
    "bended_bwt",
    "bwt_from_suffix_array",
    "count_array",
    "lf_step",
    "suffix_array",
]
