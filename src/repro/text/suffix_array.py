"""Suffix array construction by prefix doubling.

The paper builds its suffix array with quicksort (§4.4); we use the
Manber–Myers prefix-doubling scheme vectorised with ``numpy`` —
``O(n log n)`` time, which is ample for the verification role this module
plays (the production ring never materialises a suffix array; see
DESIGN.md §6.1).

Convention: the input is a sequence of non-negative integers whose *last*
symbol must be strictly largest (the ``$`` sentinel of §2.3.1, where ``$``
is defined as "a special symbol larger than any other").  A helper is
provided to append such a sentinel.
"""

from __future__ import annotations

import numpy as np


def append_sentinel(text) -> np.ndarray:
    """Return ``text`` with a fresh largest symbol appended."""
    arr = np.asarray(text, dtype=np.int64)
    sentinel = (int(arr.max()) + 1) if len(arr) else 0
    return np.concatenate([arr, [sentinel]])


def suffix_array(text) -> np.ndarray:
    """Suffix array of ``text`` (0-based positions).

    ``sa[k]`` is the start of the k-th lexicographically smallest suffix.
    The caller is responsible for sentinel termination if unique ordering
    of all suffixes is required (ties cannot occur once the final symbol
    is strictly largest).
    """
    arr = np.asarray(text, dtype=np.int64)
    n = len(arr)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if len(arr) and arr.min() < 0:
        raise ValueError("symbols must be non-negative")

    # rank[i]: current bucket of suffix i by its first k symbols.
    rank = np.unique(arr, return_inverse=True)[1].astype(np.int64)
    sa = np.argsort(rank, kind="stable").astype(np.int64)
    k = 1
    while k < n:
        # Secondary key: rank of suffix i+k (suffixes ending early sort first).
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        sa = order.astype(np.int64)
        # Recompute ranks: new bucket whenever either key changes.
        key1 = rank[sa]
        key2 = second[sa]
        changed = np.ones(n, dtype=bool)
        changed[1:] = (key1[1:] != key1[:-1]) | (key2[1:] != key2[:-1])
        new_rank = np.empty(n, dtype=np.int64)
        new_rank[sa] = np.cumsum(changed) - 1
        rank = new_rank
        if rank[sa[-1]] == n - 1:  # all suffixes distinct already
            break
        k <<= 1
    return sa


def inverse_suffix_array(sa: np.ndarray) -> np.ndarray:
    """``isa[i]`` = lexicographic rank of the suffix starting at ``i``."""
    isa = np.empty(len(sa), dtype=np.int64)
    isa[sa] = np.arange(len(sa))
    return isa
