"""Concurrent query broker: admission control over a snapshot index.

The dynamic ring's epoch snapshots (see
:mod:`repro.core.dynamic`) make reads and writes safe to interleave;
this module adds the serving discipline around them:

- **bounded admission** — queries enter a fixed-depth queue served by a
  small worker pool.  When the queue is full, :meth:`QueryBroker.submit`
  sheds the query immediately with a typed :class:`QueryRejected`
  instead of queueing without bound — the caller gets a fast, explicit
  "try later", and the workers never fall arbitrarily far behind;
- **per-query watchdog** — every admitted query runs under its own
  :class:`~repro.reliability.budget.ResourceBudget` (deadline, op cap,
  solution cap) wired to a :class:`CancellationToken`.  The engines
  honour the budget cooperatively; a watchdog thread additionally trips
  the token of any query that overstays its deadline (including time
  spent queued), so even a stall inside a single engine call cannot
  wedge a worker forever without at least being flagged;
- **background maintenance** — an optional thread periodically calls
  the index's ``maintenance()`` (buffer freeze, geometric merges, WAL
  checkpointing for :class:`~repro.reliability.wal.DurableDynamicRing`)
  so compaction cost stays off the query path.  In-flight queries hold
  pre-merge snapshots and are unaffected.

The broker works with any object exposing ``evaluate`` (the static
ring included); snapshot isolation guarantees only hold for indexes
that provide them (the dynamic ring family).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Optional

from concurrent.futures import Future

from repro.core.interface import QueryError
from repro.reliability.budget import CancellationToken, ResourceBudget

DEFAULT_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 64


class QueryRejected(QueryError):
    """Admission control shed this query (the bounded queue was full)."""


class _Job:
    __slots__ = (
        "query", "options", "future", "budget", "token", "deadline_at",
        "coalesce_key", "followers",
    )

    def __init__(self, query, options, budget, token, deadline_at):
        self.query = query
        self.options = options
        self.future: Future = Future()
        self.budget = budget
        self.token = token
        self.deadline_at = deadline_at
        #: Canonical cache key when this job leads a coalescing class.
        self.coalesce_key = None
        #: Concurrent submissions of the same canonical query, parked
        #: here instead of the queue; drained after the leader finishes.
        self.followers: list["_Job"] = []


class QueryBroker:
    """Bounded, watched, concurrent query intake for one index.

    Parameters
    ----------
    index:
        Anything with ``evaluate(query, budget=..., **options)``.
    workers:
        Worker threads evaluating admitted queries.
    queue_depth:
        Maximum queries waiting beyond the ones being executed; a full
        queue rejects with :class:`QueryRejected`.
    default_timeout:
        Deadline (seconds) applied to queries submitted without one.
    maintenance_interval:
        Seconds between background ``index.maintenance()`` calls;
        ``None`` disables the maintenance thread.
    watchdog_interval:
        Poll period of the deadline watchdog.
    coalesce:
        In-flight request coalescing (default on; effective only when
        the index exposes ``cache_probe`` — i.e. is a
        :class:`~repro.cache.system.CachedQuerySystem`).  Submissions
        whose canonical cache key matches a query already admitted and
        not yet finished do not enter the queue: they park behind that
        *leader* and are answered from the leader's just-stored cache
        entry when it completes — one evaluation fans out to every
        concurrent identical request.  If the leader fails or times
        out, parked followers fall back to their own evaluations
        (degradation, never a shared wrong answer).
    """

    def __init__(
        self,
        index,
        *,
        workers: int = DEFAULT_WORKERS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        default_timeout: Optional[float] = None,
        maintenance_interval: Optional[float] = 0.05,
        watchdog_interval: float = 0.02,
        coalesce: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._index = index
        self._queue: "queue.Queue[_Job]" = queue.Queue(maxsize=queue_depth)
        self._workers_n = workers
        self._default_timeout = default_timeout
        self._maintenance_interval = maintenance_interval
        self._watchdog_interval = watchdog_interval
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._inflight: set[_Job] = set()
        self._inflight_lock = threading.Lock()
        self._probe = getattr(index, "cache_probe", None) if coalesce else None
        if not callable(self._probe):
            self._probe = None
        self._leaders: dict[object, _Job] = {}
        self._leader_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = {
            "submitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cancelled_by_watchdog": 0,
            "maintenance_runs": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "coalesce_fanout": 0,
        }
        # Wall-clock seconds each worker thread spent inside evaluate()
        # (indexed like the ``broker-worker-{i}`` thread names).
        self._busy_seconds = [0.0] * workers

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryBroker":
        if self._started:
            raise RuntimeError("broker already started")
        self._started = True
        self._stop.clear()
        for i in range(self._workers_n):
            t = threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"broker-worker-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        t = threading.Thread(
            target=self._watchdog_loop, name="broker-watchdog", daemon=True
        )
        t.start()
        self._threads.append(t)
        if self._maintenance_interval is not None and hasattr(
            self._index, "maintenance"
        ):
            t = threading.Thread(
                target=self._maintenance_loop,
                name="broker-maintenance",
                daemon=True,
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Drain: reject queued work, cancel nothing in flight, join."""
        if not self._started:
            return
        self._stop.set()
        # Fail queued-but-unstarted futures so callers don't hang —
        # including followers parked behind a drained leader.
        self._drain_queue()
        for t in self._threads:
            t.join(timeout=timeout)
        # Close the submit/stop race: a submit() that passed the entry
        # check before the flag flipped may have enqueued its job after
        # the drain above.  With the workers joined nothing consumes the
        # queue any more, so drain once again — between this sweep and
        # submit()'s own post-enqueue re-check (see below), every such
        # straggler is failed rather than stranded.
        self._drain_queue()
        self._threads.clear()
        self._started = False

    def _drain_queue(self) -> None:
        """Fail every queued-but-unstarted job with :class:`QueryRejected`."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            for waiter in [job] + self._release_followers(job):
                if not waiter.future.done():
                    waiter.future.set_exception(
                        QueryRejected("broker shut down")
                    )
                with self._inflight_lock:
                    self._inflight.discard(waiter)

    def __enter__(self) -> "QueryBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- intake --------------------------------------------------------------

    def submit(
        self,
        query,
        *,
        timeout: Optional[float] = None,
        limit: Optional[int] = None,
        max_ops: Optional[int] = None,
        **options,
    ) -> Future:
        """Admit a query; returns a :class:`Future` of its QueryResult.

        Raises :class:`QueryRejected` *synchronously* when the queue is
        full — load shedding is an admission-time decision, not a
        deferred failure.
        """
        if not self._started or self._stop.is_set():
            raise QueryRejected("broker is not running")
        effective_timeout = timeout if timeout is not None else self._default_timeout
        token = CancellationToken()
        budget = ResourceBudget(
            timeout=effective_timeout,
            max_ops=max_ops,
            max_solutions=limit,
            token=token,
        )
        deadline_at = (
            time.monotonic() + effective_timeout
            if effective_timeout is not None
            else None
        )
        options = dict(options)
        options.setdefault("limit", limit)
        job = _Job(query, options, budget, token, deadline_at)
        with self._stats_lock:
            self._stats["submitted"] += 1
        if self._probe is not None:
            try:
                key, served = self._probe(query, budget=budget, **options)
            except Exception:
                key, served = None, None  # fail open: run normally
            if served is not None:
                # Resident complete result at the current generation —
                # answered at admission, no queue slot, no worker.
                with self._stats_lock:
                    self._stats["cache_hits"] += 1
                    self._stats["completed"] += 1
                job.future.set_result(served)
                return job.future
            if key is not None:
                with self._leader_lock:
                    leader = self._leaders.get(key)
                    if leader is not None:
                        # Same canonical query already in flight: park
                        # behind it instead of evaluating twice.
                        leader.followers.append(job)
                        with self._stats_lock:
                            self._stats["coalesced"] += 1
                        with self._inflight_lock:
                            self._inflight.add(job)  # watchdog coverage
                        return job.future
                    job.coalesce_key = key
                    self._leaders[key] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._abandon_leadership(job)
            with self._stats_lock:
                self._stats["rejected"] += 1
            raise QueryRejected(
                f"admission queue full "
                f"({self._queue.maxsize} waiting, {self._workers_n} workers)"
            ) from None
        if self._stop.is_set():
            # The entry check above raced stop(): the flag flipped after
            # it passed, so this job may have been enqueued after stop()
            # drained the queue — with the workers gone, nothing would
            # ever cancel or fail it.  The flag is set before stop()
            # drains, so at this point either stop()'s sweep already
            # failed the job, or it is still queued and this drain fails
            # it now; either way the future resolves.
            self._drain_queue()
            exc = (
                job.future.exception(timeout=0)
                if job.future.done()
                else None
            )
            if isinstance(exc, QueryRejected):
                raise exc
        return job.future

    def _abandon_leadership(self, job: _Job) -> None:
        """Drop ``job``'s coalescing registration (if it holds one)."""
        if job.coalesce_key is None:
            return
        with self._leader_lock:
            if self._leaders.get(job.coalesce_key) is job:
                del self._leaders[job.coalesce_key]

    def _release_followers(self, job: _Job) -> list["_Job"]:
        """End ``job``'s leadership; returns the parked followers.

        Called when the leader finishes (either way) *before* its
        future resolves, so a submission arriving afterwards starts a
        fresh leader instead of attaching to a finished one.
        """
        if job.coalesce_key is None:
            return []
        with self._leader_lock:
            if self._leaders.get(job.coalesce_key) is job:
                del self._leaders[job.coalesce_key]
            followers, job.followers = job.followers, []
        if followers:
            with self._stats_lock:
                self._stats["coalesce_fanout"] += len(followers)
        return followers

    def evaluate(self, query, **kwargs):
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(query, **kwargs).result()

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Serving telemetry, consistent across thread and pool modes.

        Always present: the lifecycle counters, ``queued`` (current
        queue occupancy), ``queue_depth`` (its bound), ``in_flight``,
        ``workers`` and per-thread ``busy_seconds``.  When the index is
        pool-backed (a :class:`~repro.parallel.ParallelRingIndex` or
        anything exposing ``pool_stats()``), the process-pool telemetry
        — worker liveness, dispatch/rescue/respawn counters, per-process
        busy seconds — is nested under ``"pool"`` so one ``stats()``
        call describes the whole execution stack.
        """
        with self._stats_lock:
            out = dict(self._stats)
            out["busy_seconds"] = list(self._busy_seconds)
        out["queued"] = self._queue.qsize()
        out["queue_depth"] = self._queue.maxsize
        out["workers"] = self._workers_n
        with self._inflight_lock:
            out["in_flight"] = len(self._inflight)
        pool_stats = getattr(self._index, "pool_stats", None)
        if callable(pool_stats):
            out["pool"] = pool_stats()
        cache_stats = getattr(self._index, "cache_stats", None)
        if callable(cache_stats):
            out["cache"] = cache_stats()
        return out

    # -- threads -------------------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        while not self._stop.is_set():
            try:
                job = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            if not job.future.set_running_or_notify_cancel():
                self._run_followers(self._release_followers(job), worker_id)
                continue
            followers = self._run_job(job, worker_id)
            self._run_followers(followers, worker_id)

    def _run_job(self, job: _Job, worker_id: int) -> list[_Job]:
        """Evaluate one admitted job; returns its released followers."""
        with self._inflight_lock:
            self._inflight.add(job)
        started = time.monotonic()
        followers: list[_Job] = []
        try:
            result = self._index.evaluate(
                job.query, budget=job.budget, **job.options
            )
        except BaseException as exc:  # typed QueryErrors included
            followers = self._release_followers(job)
            with self._stats_lock:
                self._stats["failed"] += 1
            job.future.set_exception(exc)
        else:
            # Leadership ends before the future resolves: a submission
            # observing the result via the future can never attach to
            # an already-finished leader.
            followers = self._release_followers(job)
            with self._stats_lock:
                self._stats["completed"] += 1
            job.future.set_result(result)
        finally:
            elapsed = time.monotonic() - started
            with self._stats_lock:
                self._busy_seconds[worker_id] += elapsed
            with self._inflight_lock:
                self._inflight.discard(job)
        return followers

    def _run_followers(self, followers: list[_Job], worker_id: int) -> None:
        """Answer parked followers after their leader finished.

        Each follower re-evaluates through the (cached) index under its
        *own* options and budget: when the leader stored a complete
        result this is an O(rows) cache hit translated to the
        follower's variables; when the leader failed, timed out, or
        produced an uncacheable (truncated) result, the follower falls
        back to a normal evaluation — degraded throughput, identical
        answers.
        """
        for f in followers:
            if not f.future.set_running_or_notify_cancel():
                with self._inflight_lock:
                    self._inflight.discard(f)
                continue
            self._run_job(f, worker_id)

    def _watchdog_loop(self) -> None:
        while not self._stop.is_set():
            now = time.monotonic()
            with self._inflight_lock:
                overdue = [
                    job
                    for job in self._inflight
                    if job.deadline_at is not None
                    and now > job.deadline_at
                    and not job.token.cancelled
                ]
            for job in overdue:
                job.token.cancel()
                with self._stats_lock:
                    self._stats["cancelled_by_watchdog"] += 1
            self._stop.wait(self._watchdog_interval)

    def _maintenance_loop(self) -> None:
        while not self._stop.is_set():
            try:
                if self._index.maintenance():
                    with self._stats_lock:
                        self._stats["maintenance_runs"] += 1
            except Exception:  # pragma: no cover - keep the thread alive
                pass
            self._stop.wait(self._maintenance_interval)
