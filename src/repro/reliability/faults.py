"""Deterministic, seeded fault injection for the reliability suite.

A serving layer's failure handling is only trustworthy once it has been
exercised: this module installs **monkeypatchable hooks** on the hot
primitives every engine bottoms out in — wavelet-matrix ``rank`` /
``select`` / ``range_next_value`` (``next_in_range``), bitvector reads,
their batch counterparts (``rank1_many`` / ``select1_many`` /
``rank_many`` / ``extract_at`` — the vectorised fast path), the
save/load I/O path, and the durability protocol of the dynamic ring
(``dynamic.compact``, ``wal.append``, ``wal.fsync``,
``checkpoint.write`` — lazily resolved, see :data:`LAZY_SITES`) — and
injects latency or exceptions into
them under a seeded RNG, so tests can *prove* that

- injected latency makes budgets fire (``QueryTimeout``) or, with
  ``partial=True``, yields truncated-but-correct prefixes;
- injected exceptions surface as typed errors
  (``QueryExecutionError`` / ``IndexIntegrityError``), never as silent
  wrong answers.

Determinism: every :class:`FaultInjector` owns a ``random.Random(seed)``
consulted once per hooked call, and the engines themselves are
deterministic, so a given (workload, sites, seed) triple always fires
the same faults in the same places.  ``injector.fired`` records the
per-site trip counts for assertions.

Usage::

    with inject_faults(Fault("wavelet.rank", latency=0.001), seed=7):
        index.evaluate(query, timeout=0.05)   # -> QueryTimeout

The registry (:data:`SITES`) maps site names to ``(owner, attribute)``
patch targets; :func:`available_sites` lists them.
"""

from __future__ import annotations

import importlib
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.bits.bitvector import BitVector
from repro.bits.rrr import RRRBitVector
from repro.graph import io as graph_io
from repro.sequences.wavelet_matrix import WaveletMatrix


class InjectedFault(RuntimeError):
    """The default exception an error fault raises at its site."""


#: site name -> (owner object, attribute name) patch target.
SITES: dict[str, tuple[object, str]] = {
    "wavelet.rank": (WaveletMatrix, "rank"),
    "wavelet.select": (WaveletMatrix, "select"),
    "wavelet.range_next_value": (WaveletMatrix, "next_in_range"),
    "wavelet.access": (WaveletMatrix, "__getitem__"),
    "bitvector.access": (BitVector, "__getitem__"),
    "bitvector.rank": (BitVector, "rank1"),
    "bitvector.select": (BitVector, "select1"),
    # Batch kernels (the vectorised fast path must degrade like the
    # scalar one under faults — see scripts/chaos_check.py).
    "bitvector.rank_many": (BitVector, "rank1_many"),
    "bitvector.select_many": (BitVector, "select1_many"),
    "bitvector.access_many": (BitVector, "access_many"),
    "wavelet.rank_many": (WaveletMatrix, "rank_many"),
    "wavelet.extract_at": (WaveletMatrix, "extract_at"),
    "rrr.rank": (RRRBitVector, "rank1"),
    "io.save": (graph_io, "save_graph"),
    "io.load": (graph_io, "load_graph"),
}

#: Durability/concurrency sites, resolved lazily at install time —
#: ``(module path, owner class or None for the module itself, attr)``.
#: Importing them eagerly here would cycle through ``core.system`` →
#: ``reliability`` → this module while ``core`` is still initialising.
LAZY_SITES: dict[str, tuple[str, Optional[str], str]] = {
    "dynamic.compact": ("repro.core.dynamic", "DynamicRingIndex", "_compact"),
    "wal.append": ("repro.reliability.wal", "WriteAheadLog", "append"),
    "wal.fsync": ("repro.reliability.wal", None, "_fsync"),
    "checkpoint.write": ("repro.reliability.wal", None, "write_checkpoint"),
    # Parallel execution layer: failing spawns exercise pool-unavailable
    # degradation (queries fall back to serial), failing merges must
    # surface as typed errors, never truncated-but-ok answers.
    "parallel.spawn": ("repro.parallel.pool", None, "_spawn_worker"),
    "parallel.slice_merge": ("repro.parallel.pool", None, "merge_blocks"),
    # Serving-cache layer: a failing lookup must fall through to a
    # normal evaluation and a failing store must only cost future hits
    # — in both cases answers stay byte-identical to uncached ones
    # (CachedQuerySystem wraps both calls fail-open).
    "cache.lookup": ("repro.cache.result_cache", "ResultCache", "lookup"),
    "cache.store": ("repro.cache.result_cache", "ResultCache", "store"),
    # Sharded serving tier: dispatch/gather cover the scatter-gather
    # RPC seams of the coordinator (retry + breaker + partial-result
    # degradation), restart covers the supervisor's recovery path — a
    # failing restart must be counted, never crash the supervisor.
    "shard.dispatch": ("repro.serving.coordinator", None, "dispatch_shard"),
    "shard.gather": ("repro.serving.coordinator", None, "gather_block"),
    "shard.restart": ("repro.serving.supervisor", None, "restart_shard"),
    # Process-isolated shards: a failing spawn must surface as a typed
    # ShardProcessDied (counted by supervisor/replica repair, never a
    # crash), a failing heartbeat marks the endpoint unhealthy, and a
    # failing replica promotion must degrade the query to the
    # flagged-partial contract — never a wrong or half-merged answer.
    "proc.spawn": ("repro.serving.process", None, "spawn_process"),
    "proc.heartbeat": ("repro.serving.process", None, "heartbeat"),
    "replica.failover": ("repro.serving.replica", None, "promote_replica"),
    # Adaptive planning: a failing per-depth re-ranking must degrade the
    # rest of the query to the static §4.3 order (a counted fallback,
    # observable as ``plan.rerank_fallback``) — worse plan, same rows.
    "plan.rerank": ("repro.core.ltj", None, "rank_candidates"),
    # Out-of-core path: a build killed while spilling a run or merging
    # must leave either no pack or the previous intact one (the writer
    # publishes atomically), and be restartable from scratch; a failing
    # mmap open must surface as IndexIntegrityError, never as a ring
    # over garbage pages.
    "build.spill": ("repro.graph.bulkload", None, "_spill_run"),
    "build.merge": ("repro.graph.bulkload", None, "_merge_chunk"),
    # Parallel partitioned build: a failing build task must surface as a
    # typed BulkBuildError with no partial pack (forked workers resolve
    # the executor per task, so the patched site fires inside them too);
    # a *killed* worker is rescued inline and the retry stays
    # byte-identical.
    "build.worker": ("repro.graph.bulkload", None, "_execute_build_task"),
    "mmap.open": ("repro.core.frozen", None, "_open_memmap"),
}


def _resolve_site(site: str) -> tuple[object, str]:
    """The ``(owner, attribute)`` patch target of a registered site."""
    if site in SITES:
        return SITES[site]
    module_path, owner_name, attr = LAZY_SITES[site]
    module = importlib.import_module(module_path)
    owner = getattr(module, owner_name) if owner_name else module
    return owner, attr


def available_sites() -> list[str]:
    """The hookable site names, sorted."""
    return sorted(set(SITES) | set(LAZY_SITES))


@dataclass
class Fault:
    """One fault to inject at a registered site.

    Parameters
    ----------
    site:
        A key of :data:`SITES`.
    probability:
        Chance the fault fires on any given call (seeded RNG).
    latency:
        Seconds slept when the fault fires.
    error:
        Exception *class* raised when the fault fires (after the
        latency); ``None`` injects latency only.
    max_fires:
        Stop firing after this many trips (``None`` = unlimited).
    """

    site: str
    probability: float = 1.0
    latency: float = 0.0
    error: Optional[type] = None
    max_fires: Optional[int] = None
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.site not in SITES and self.site not in LAZY_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"available: {', '.join(available_sites())}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")


class FaultInjector:
    """Installs faults by monkeypatching their sites; context manager.

    Re-entrant installs are rejected; uninstall always restores the
    original attributes, so a crashed test cannot leak patched hot
    paths into the rest of the suite.
    """

    def __init__(self, faults, seed: int = 0) -> None:
        if isinstance(faults, Fault):
            faults = [faults]
        self.faults = list(faults)
        self.seed = seed
        self._rng = random.Random(seed)
        self._originals: list[tuple[object, str, object]] = []
        self.fired: dict[str, int] = {f.site: 0 for f in self.faults}

    def install(self) -> "FaultInjector":
        if self._originals:
            raise RuntimeError("faults already installed")
        by_site: dict[str, list[Fault]] = {}
        for fault in self.faults:
            fault.fired = 0
            by_site.setdefault(fault.site, []).append(fault)
        for site, site_faults in by_site.items():
            owner, attr = _resolve_site(site)
            original = getattr(owner, attr)
            self._originals.append((owner, attr, original))
            setattr(owner, attr, self._wrap(site, site_faults, original))
        return self

    def uninstall(self) -> None:
        while self._originals:
            owner, attr, original = self._originals.pop()
            setattr(owner, attr, original)

    def _wrap(self, site: str, site_faults: list, original):
        rng = self._rng
        fired = self.fired

        def hooked(*args, **kwargs):
            for fault in site_faults:
                if fault.max_fires is not None and fault.fired >= fault.max_fires:
                    continue
                if rng.random() >= fault.probability:
                    continue
                fault.fired += 1
                fired[site] += 1
                if fault.latency:
                    time.sleep(fault.latency)
                if fault.error is not None:
                    raise fault.error(f"injected fault at {site}")
            return original(*args, **kwargs)

        hooked.__name__ = getattr(original, "__name__", site)
        hooked.__wrapped__ = original
        return hooked

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()


def inject_faults(*faults: Fault, seed: int = 0) -> FaultInjector:
    """Context-manager sugar: ``with inject_faults(Fault(...), seed=1):``"""
    return FaultInjector(faults, seed=seed)
