"""Reliability subsystem: budgets, integrity, durability, serving.

The ROADMAP's north star is a serving layer, and serving layers must
enforce budgets, cancel cleanly, detect corruption, survive crashes and
degrade gracefully — the paper's own WGPB protocol runs every query
under a 60 s timeout precisely because worst-case-optimal joins still
have huge worst cases.  Five modules:

- :mod:`repro.reliability.budget` — :class:`ResourceBudget`, the single
  resource governor (wall-clock deadline, cooperative op ticks, a
  max-solutions cap and an external :class:`CancellationToken`) every
  engine now acquires its deadline from;
- :mod:`repro.reliability.integrity` — checksummed index persistence
  and structural self-checks, raising :class:`IndexIntegrityError`
  instead of silently serving a corrupted ring;
- :mod:`repro.reliability.faults` — a deterministic, seeded
  fault-injection registry used by the test suite and
  ``scripts/chaos_check.py`` to prove the above actually fires;
- :mod:`repro.reliability.wal` — crash safety for the dynamic ring:
  a CRC-framed write-ahead log, checkpoints built on the integrity
  manifests, and :class:`DurableDynamicRing` tying them together with
  prefix-consistent recovery;
- :mod:`repro.reliability.broker` — :class:`QueryBroker`, bounded
  admission + per-query watchdog deadlines + background maintenance
  over the dynamic ring's epoch snapshots.

``wal`` and ``broker`` re-exports are lazy (PEP 562): they import
:mod:`repro.core.dynamic`, which itself imports this package through
``core.system`` → ``reliability.budget``, so binding them eagerly here
would cycle during ``repro.core`` initialisation.
"""

from repro.reliability.budget import CancellationToken, ResourceBudget
from repro.reliability.faults import (
    Fault,
    FaultInjector,
    InjectedFault,
    available_sites,
    inject_faults,
)
from repro.reliability.integrity import IndexIntegrityError, verify_index

_LAZY = {
    "DurableDynamicRing": "repro.reliability.wal",
    "RecoveryReport": "repro.reliability.wal",
    "WALError": "repro.reliability.wal",
    "WriteAheadLog": "repro.reliability.wal",
    "replay": "repro.reliability.wal",
    "verify_dynamic_dir": "repro.reliability.wal",
    "QueryBroker": "repro.reliability.broker",
    "QueryRejected": "repro.reliability.broker",
}


def __getattr__(name: str):
    module_path = _LAZY.get(name)
    if module_path is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_path), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "CancellationToken",
    "DurableDynamicRing",
    "Fault",
    "FaultInjector",
    "IndexIntegrityError",
    "InjectedFault",
    "QueryBroker",
    "QueryRejected",
    "RecoveryReport",
    "ResourceBudget",
    "WALError",
    "WriteAheadLog",
    "available_sites",
    "inject_faults",
    "replay",
    "verify_dynamic_dir",
]
