"""Reliability subsystem: budgets, integrity checks, fault injection.

The ROADMAP's north star is a serving layer, and serving layers must
enforce budgets, cancel cleanly, detect corruption and degrade
gracefully — the paper's own WGPB protocol runs every query under a
60 s timeout precisely because worst-case-optimal joins still have huge
worst cases.  Three modules:

- :mod:`repro.reliability.budget` — :class:`ResourceBudget`, the single
  resource governor (wall-clock deadline, cooperative op ticks, a
  max-solutions cap and an external :class:`CancellationToken`) every
  engine now acquires its deadline from;
- :mod:`repro.reliability.integrity` — checksummed index persistence
  and structural self-checks, raising :class:`IndexIntegrityError`
  instead of silently serving a corrupted ring;
- :mod:`repro.reliability.faults` — a deterministic, seeded
  fault-injection registry used by the test suite and
  ``scripts/chaos_check.py`` to prove the above actually fires.
"""

from repro.reliability.budget import CancellationToken, ResourceBudget
from repro.reliability.faults import (
    Fault,
    FaultInjector,
    InjectedFault,
    available_sites,
    inject_faults,
)
from repro.reliability.integrity import IndexIntegrityError, verify_index

__all__ = [
    "CancellationToken",
    "Fault",
    "FaultInjector",
    "IndexIntegrityError",
    "InjectedFault",
    "ResourceBudget",
    "available_sites",
    "inject_faults",
    "verify_index",
]
