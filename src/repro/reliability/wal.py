"""Crash-safe durability for the dynamic ring: WAL + checkpoints.

:class:`~repro.core.dynamic.DynamicRingIndex` is purely in-memory — a
crash loses every insert and delete.  This module wraps it in the
classic write-ahead protocol so the LSM shape the §7 update story
already follows becomes production-viable:

- **write-ahead log** (:class:`WriteAheadLog`) — every ``insert`` /
  ``delete`` is appended as a CRC32-framed record and fsync'd *before*
  it is applied in memory; the acknowledgement to the caller is the
  durability barrier.  Replay (:func:`replay`) walks the frames,
  truncating a torn tail (a record cut short by the crash, or whose
  CRC no longer matches) rather than deserialising garbage — a torn
  record was by construction never acknowledged;
- **checkpoints** (:func:`write_checkpoint` / :func:`load_checkpoint`)
  — the frozen static rings persist through the existing
  integrity-manifest machinery (``graph_io.save_graph`` + SHA-256
  sidecars, exactly like ``Ring.save``), the buffer and tombstone sets
  ride in the checkpoint ``MANIFEST.json``.  A checkpoint is written
  to a fresh ``checkpoint-<epoch>`` directory and becomes current only
  when the one-line ``CURRENT`` pointer file is atomically replaced —
  a crash mid-checkpoint leaves the previous checkpoint (plus the full
  WAL) authoritative;
- **recovery** (:meth:`DurableDynamicRing.recover`) — load the current
  checkpoint (payload checksums + the PR-1 structural self-checks),
  replay the WAL tail on top, reopen the log for appending.  Replay
  skips records the checkpoint already contains (same WAL generation,
  offset below the checkpoint's high-water mark) and re-applies the
  rest; records are set-idempotent, so landing exactly on the last
  acknowledged state needs no undo log.

Layout of an index directory::

    <dir>/universe.npz[.config.json]   id universes + dictionary (fixed)
    <dir>/wal.log                      header + CRC-framed records
    <dir>/CURRENT                      name of the live checkpoint dir
    <dir>/checkpoint-<epoch>/MANIFEST.json
    <dir>/checkpoint-<epoch>/ring-000.npz[.config.json] ...

Fault-injection sites ``wal.append``, ``wal.fsync`` and
``checkpoint.write`` (see :mod:`repro.reliability.faults`) hook the
corresponding entry points below; ``scripts/chaos_check.py`` kills the
protocol at each of them and at arbitrary WAL byte offsets to prove
recovery never serves a silent partial state.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.core.dynamic import DEFAULT_BUFFER_THRESHOLD, DynamicRingIndex, Triple
from repro.core.ring import Ring
from repro.graph import io as graph_io
from repro.graph.dataset import Graph
from repro.reliability.integrity import (
    IndexIntegrityError,
    checked_load_graph,
    read_manifest,
    verify_file,
    verify_ring_structure,
    write_manifest,
)

WAL_MAGIC = b"RINGWAL1"
WAL_VERSION = 1
#: magic, version, generation, n_nodes, n_predicates
_HEADER = struct.Struct("<8sIQQQ")
#: payload length, CRC32(payload)
_FRAME = struct.Struct("<II")
#: opcode, s, p, o
_OP = struct.Struct("<BQQQ")

HEADER_SIZE = _HEADER.size

OP_INSERT = 1
OP_DELETE = 2
_OP_NAMES = {OP_INSERT: "insert", OP_DELETE: "delete"}

WAL_FILE = "wal.log"
UNIVERSE_FILE = "universe.npz"
CURRENT_POINTER = "CURRENT"
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_MANIFEST = "MANIFEST.json"
CHECKPOINT_VERSION = 1

#: Default WAL size that triggers a checkpoint during maintenance.
DEFAULT_CHECKPOINT_BYTES = 1 << 20


class WALError(IndexIntegrityError):
    """A WAL file is structurally unusable (bad magic/header/version)."""


def _fsync(f) -> None:
    """Flush + fsync barrier (module-level so faults can hook it)."""
    f.flush()
    os.fsync(f.fileno())


def _fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- records ---------------------------------------------------------------------


@dataclass(frozen=True)
class WALRecord:
    """One durably framed update: ``(op, s, p, o)`` at ``offset``."""

    op: int
    s: int
    p: int
    o: int
    offset: int  # byte offset of the frame start within the file

    @property
    def triple(self) -> Triple:
        return (self.s, self.p, self.o)

    @property
    def op_name(self) -> str:
        return _OP_NAMES.get(self.op, f"op{self.op}")


@dataclass
class ReplayReport:
    """What :func:`replay` found in a WAL file."""

    path: str
    generation: int
    n_nodes: int
    n_predicates: int
    records: list[WALRecord] = field(default_factory=list)
    valid_bytes: int = HEADER_SIZE  # prefix length holding intact frames
    total_bytes: int = HEADER_SIZE
    corrupt_reason: Optional[str] = None  # why the tail was cut (None=clean)

    @property
    def dropped_bytes(self) -> int:
        return self.total_bytes - self.valid_bytes

    @property
    def truncated(self) -> bool:
        return self.dropped_bytes > 0


def replay(path) -> ReplayReport:
    """Read every intact record of a WAL file (read-only).

    The first frame that is cut short or fails its CRC ends the scan:
    everything from its offset on is a **torn tail** — bytes that were
    in flight when the process died and whose operations were therefore
    never acknowledged.  The report carries the surviving records, the
    durable prefix length (``valid_bytes``) and the reason the tail was
    cut.  A missing or header-corrupt file raises :class:`WALError` —
    with no readable header there is no acknowledged state to recover,
    so silence would be a lie.
    """
    path = str(path)
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as exc:
        raise WALError(path, f"cannot read WAL: {exc}") from exc
    if len(data) < HEADER_SIZE:
        raise WALError(path, f"WAL shorter than its {HEADER_SIZE}-byte header")
    magic, version, generation, n_nodes, n_predicates = _HEADER.unpack_from(data)
    if magic != WAL_MAGIC:
        raise WALError(path, f"bad WAL magic {magic!r}")
    if version != WAL_VERSION:
        raise WALError(path, f"unsupported WAL version {version}")
    report = ReplayReport(
        path=path,
        generation=generation,
        n_nodes=n_nodes,
        n_predicates=n_predicates,
        total_bytes=len(data),
    )
    pos = HEADER_SIZE
    while pos < len(data):
        if pos + _FRAME.size > len(data):
            report.corrupt_reason = "torn frame header at tail"
            break
        length, crc = _FRAME.unpack_from(data, pos)
        start = pos + _FRAME.size
        end = start + length
        if length != _OP.size or end > len(data):
            report.corrupt_reason = (
                f"torn record at offset {pos} "
                f"(frame wants {length} payload bytes)"
            )
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            report.corrupt_reason = f"CRC mismatch at offset {pos}"
            break
        op, s, p, o = _OP.unpack(payload)
        if op not in _OP_NAMES:
            report.corrupt_reason = f"unknown opcode {op} at offset {pos}"
            break
        report.records.append(WALRecord(op, s, p, o, offset=pos))
        pos = end
        report.valid_bytes = pos
    return report


class WriteAheadLog:
    """Append-only, CRC-framed, fsync-barriered operation log.

    One instance owns the file handle; every :meth:`append` writes a
    complete frame and (by default) runs the fsync barrier before
    returning, so a returned offset *is* the durability receipt.
    """

    def __init__(self, path, file, generation: int, n_nodes: int,
                 n_predicates: int, fsync: bool = True) -> None:
        self.path = str(path)
        self._f = file
        self.generation = generation
        self.n_nodes = n_nodes
        self.n_predicates = n_predicates
        self._fsync_enabled = fsync
        self._lock = threading.Lock()

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(cls, path, n_nodes: int, n_predicates: int,
               generation: int = 0, fsync: bool = True) -> "WriteAheadLog":
        """Start a fresh log (refuses to clobber an existing one)."""
        path = str(path)
        if os.path.exists(path):
            raise WALError(path, "WAL already exists; use open()")
        f = open(path, "w+b")
        f.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, generation,
                             n_nodes, n_predicates))
        _fsync(f)
        return cls(path, f, generation, n_nodes, n_predicates, fsync=fsync)

    @classmethod
    def open(cls, path, fsync: bool = True) -> tuple["WriteAheadLog", ReplayReport]:
        """Open an existing log for appending, truncating any torn tail."""
        report = replay(path)
        f = open(str(path), "r+b")
        if report.truncated:
            f.truncate(report.valid_bytes)
            _fsync(f)
        f.seek(report.valid_bytes)
        wal = cls(path, f, report.generation, report.n_nodes,
                  report.n_predicates, fsync=fsync)
        return wal, report

    # -- appending -----------------------------------------------------------

    def append(self, op: int, s: int, p: int, o: int) -> int:
        """Frame + write + fsync one record; returns the end offset.

        When this returns, the record is durable (unless constructed
        with ``fsync=False``, the testing/throughput escape hatch).
        """
        payload = _OP.pack(op, int(s), int(p), int(o))
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            self._f.write(frame)
            if self._fsync_enabled:
                self.sync()
            else:
                self._f.flush()
            return self._f.tell()

    def sync(self) -> None:
        """Run the fsync barrier now (module hook: ``wal.fsync`` site)."""
        _fsync(self._f)

    def tell(self) -> int:
        """Current end offset (== durable length after an append)."""
        with self._lock:
            return self._f.tell()

    def reset(self, generation: int) -> None:
        """Truncate to an empty log of a new generation.

        Called after a checkpoint has captured everything: the old
        records are folded into the checkpoint, and the generation bump
        lets recovery tell a fresh log from a pre-checkpoint one.
        """
        with self._lock:
            self._f.seek(0)
            self._f.truncate(0)
            self._f.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, generation,
                                       self.n_nodes, self.n_predicates))
            _fsync(self._f)
            self.generation = generation

    def close(self) -> None:
        with self._lock:
            if not self._f.closed:
                _fsync(self._f)
                self._f.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- checkpoints -----------------------------------------------------------------


@dataclass
class CheckpointState:
    """A loaded (and verified) checkpoint."""

    directory: str
    epoch: int
    rings: list[Ring]
    buffer: set[Triple]
    tombstones: set[Triple]
    n_nodes: int
    n_predicates: int
    wal_generation: int
    wal_offset: int
    checks: list[str] = field(default_factory=list)


def _ring_graph(ring: Ring, n_nodes: int, n_predicates: int) -> Graph:
    """Materialise a ring's triples back into a Graph (§3.1.2 decode)."""
    triples = np.array(
        [ring.triple(i) for i in range(ring.n)], dtype=np.int64
    ).reshape(-1, 3)
    return Graph(triples, n_nodes=n_nodes, n_predicates=n_predicates)


def current_checkpoint_dir(directory) -> Optional[str]:
    """Resolve the ``CURRENT`` pointer, or ``None`` before any checkpoint."""
    pointer = os.path.join(str(directory), CURRENT_POINTER)
    if not os.path.exists(pointer):
        return None
    with open(pointer) as f:
        name = f.read().strip()
    if not name:
        raise IndexIntegrityError(pointer, "empty CURRENT pointer")
    target = os.path.join(str(directory), name)
    if not os.path.isdir(target):
        raise IndexIntegrityError(
            pointer, f"CURRENT points at missing checkpoint {name!r}"
        )
    return target


def write_checkpoint(
    directory,
    *,
    epoch: int,
    rings: Iterable[Ring],
    buffer: Iterable[Triple],
    tombstones: Iterable[Triple],
    n_nodes: int,
    n_predicates: int,
    wal_generation: int,
    wal_offset: int,
) -> str:
    """Persist one consistent component set; atomic via pointer swap.

    The checkpoint directory is fully written (ring payloads with
    SHA-256 sidecar manifests, then the JSON manifest, each fsync'd)
    *before* the ``CURRENT`` pointer is atomically replaced.  A crash
    at any byte of this function leaves the previous checkpoint — and
    therefore the previous recovery outcome — untouched.
    """
    directory = str(directory)
    name = f"{CHECKPOINT_PREFIX}{epoch:010d}"
    final_dir = os.path.join(directory, name)
    tmp_dir = final_dir + ".tmp"
    for stale in (tmp_dir, final_dir):
        if os.path.exists(stale):
            shutil.rmtree(stale)
    os.makedirs(tmp_dir)

    from repro.core.frozen import RingLayoutError, write_frozen_ring

    ring_entries = []
    for i, ring in enumerate(rings):
        g = _ring_graph(ring, n_nodes, n_predicates)
        fname = f"ring-{i:03d}.npz"
        fpath = os.path.join(tmp_dir, fname)
        graph_io.save_graph(g, fpath)
        write_manifest(fpath, compressed=False, graph=g)
        with open(fpath, "rb") as f:
            _fsync(f)
        entry = {"file": fname, "n_triples": int(g.n_triples)}
        # Also persist the ring as a frozen pack so recovery can open it
        # memory-mapped (recover(mmap=True)) instead of rebuilding the
        # succinct structures from the .npz.  Compressed rings have no
        # flat form; they simply fall back to the rebuild path.
        try:
            pack_name = f"ring-{i:03d}.ring"
            write_frozen_ring(
                ring,
                os.path.join(tmp_dir, pack_name),
                n_nodes=n_nodes,
                n_predicates=n_predicates,
            )
            entry["pack"] = pack_name
        except RingLayoutError:
            pass
        ring_entries.append(entry)

    manifest = {
        "format_version": CHECKPOINT_VERSION,
        "epoch": int(epoch),
        "n_nodes": int(n_nodes),
        "n_predicates": int(n_predicates),
        "rings": ring_entries,
        "buffer": sorted([int(s), int(p), int(o)] for s, p, o in buffer),
        "tombstones": sorted([int(s), int(p), int(o)] for s, p, o in tombstones),
        "wal_generation": int(wal_generation),
        "wal_offset": int(wal_offset),
    }
    mpath = os.path.join(tmp_dir, CHECKPOINT_MANIFEST)
    with open(mpath, "w") as f:
        json.dump(manifest, f)
        _fsync(f)

    os.replace(tmp_dir, final_dir)
    _fsync_dir(directory)

    pointer_tmp = os.path.join(directory, CURRENT_POINTER + ".tmp")
    with open(pointer_tmp, "w") as f:
        f.write(name)
        _fsync(f)
    os.replace(pointer_tmp, os.path.join(directory, CURRENT_POINTER))
    _fsync_dir(directory)
    return final_dir


def install_frozen_checkpoint(
    directory,
    pack_path,
    *,
    n_triples: int,
    n_nodes: int,
    n_predicates: int,
    epoch: int = 1,
) -> str:
    """Adopt a bulk-built frozen pack as a durable store's first checkpoint.

    The sharded bulk builder (:func:`repro.graph.bulkload.bulk_build_sharded`)
    writes each shard's pack once and must not pay a second pass to
    materialise the ``.npz`` ring payload ``write_checkpoint`` produces —
    so this installs a *pack-only* checkpoint: the pack (and its sidecar
    manifest) is moved into ``checkpoint-<epoch>/`` as the single ring
    entry, a fresh generation-0 WAL is created, and the ``CURRENT``
    pointer is published with the same fsync discipline as
    :func:`write_checkpoint`.  ``load_checkpoint`` opens such entries
    through the pack in both eager and mmap modes, so
    ``DurableDynamicRing.recover(mmap=True)`` serves the shard with
    zero extra passes over the data.

    The caller must already have placed ``universe.npz`` (plus its
    sidecar) in ``directory``; refuses to touch a directory that
    already holds a WAL.
    """
    from repro.reliability.integrity import manifest_path

    directory = str(directory)
    pack_path = str(pack_path)
    wal_path = os.path.join(directory, WAL_FILE)
    if os.path.exists(wal_path):
        raise WALError(wal_path, "directory already holds a durable index")
    wal = WriteAheadLog.create(wal_path, n_nodes, n_predicates, generation=0)
    wal_offset = wal.tell()
    wal.close()

    name = f"{CHECKPOINT_PREFIX}{epoch:010d}"
    final_dir = os.path.join(directory, name)
    tmp_dir = final_dir + ".tmp"
    for stale in (tmp_dir, final_dir):
        if os.path.exists(stale):
            shutil.rmtree(stale)
    os.makedirs(tmp_dir)

    pack_name = "ring-000.ring"
    dest = os.path.join(tmp_dir, pack_name)
    shutil.move(pack_path, dest)
    shutil.move(manifest_path(pack_path), manifest_path(dest))
    with open(dest, "rb") as f:
        _fsync(f)

    manifest = {
        "format_version": CHECKPOINT_VERSION,
        "epoch": int(epoch),
        "n_nodes": int(n_nodes),
        "n_predicates": int(n_predicates),
        "rings": [{"pack": pack_name, "n_triples": int(n_triples)}],
        "buffer": [],
        "tombstones": [],
        "wal_generation": 0,
        "wal_offset": int(wal_offset),
    }
    mpath = os.path.join(tmp_dir, CHECKPOINT_MANIFEST)
    with open(mpath, "w") as f:
        json.dump(manifest, f)
        _fsync(f)

    os.replace(tmp_dir, final_dir)
    _fsync_dir(directory)

    pointer_tmp = os.path.join(directory, CURRENT_POINTER + ".tmp")
    with open(pointer_tmp, "w") as f:
        f.write(name)
        _fsync(f)
    os.replace(pointer_tmp, os.path.join(directory, CURRENT_POINTER))
    _fsync_dir(directory)
    return final_dir


def load_checkpoint(
    directory, verify: bool = True, mmap: bool = False
) -> Optional[CheckpointState]:
    """Load the current checkpoint; ``None`` when none was ever taken.

    With ``verify=True`` every ring payload's SHA-256 is compared
    against its sidecar and the rebuilt ring runs the full structural
    self-check battery from :mod:`repro.reliability.integrity`.

    ``mmap=True`` opens each ring's frozen pack memory-mapped instead
    of rebuilding from the ``.npz`` — recovery RSS then grows with the
    pages queries touch, not with checkpoint size.  Verification
    downgrades to the O(1) layout check plus structural spot-checks
    (full checksums would read every page, defeating the cold map);
    checkpoints written before packs existed fall back per ring.
    """
    cpdir = current_checkpoint_dir(directory)
    if cpdir is None:
        return None
    mpath = os.path.join(cpdir, CHECKPOINT_MANIFEST)
    try:
        with open(mpath) as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexIntegrityError(
            mpath, f"unreadable checkpoint manifest: {exc}"
        ) from exc
    if manifest.get("format_version") != CHECKPOINT_VERSION:
        raise IndexIntegrityError(
            mpath,
            f"unsupported checkpoint version {manifest.get('format_version')!r}",
        )
    n_nodes = int(manifest["n_nodes"])
    n_predicates = int(manifest["n_predicates"])
    state = CheckpointState(
        directory=cpdir,
        epoch=int(manifest["epoch"]),
        rings=[],
        buffer={tuple(int(v) for v in t) for t in manifest.get("buffer", [])},
        tombstones={
            tuple(int(v) for v in t) for t in manifest.get("tombstones", [])
        },
        n_nodes=n_nodes,
        n_predicates=n_predicates,
        wal_generation=int(manifest.get("wal_generation", 0)),
        wal_offset=int(manifest.get("wal_offset", HEADER_SIZE)),
    )
    from repro.core.frozen import open_frozen_ring, verify_frozen_layout

    for entry in manifest.get("rings", []):
        pack = entry.get("pack")
        fname = entry.get("file")
        # Pack-backed rings serve the mmap path; pack-*only* entries
        # (bulk-built shard checkpoints, which never materialise a
        # .npz — see install_frozen_checkpoint) open through the pack
        # in either mode, eagerly when mmap is off.
        if pack is not None and (mmap or fname is None):
            ppath = os.path.join(cpdir, pack)
            if verify:
                verify_frozen_layout(ppath)
            ring, _ = open_frozen_ring(ppath, mmap=mmap, verify=verify)
            if ring.n != int(entry["n_triples"]):
                raise IndexIntegrityError(
                    ppath,
                    f"checkpoint pack has {ring.n} triples, "
                    f"manifest says {entry['n_triples']}",
                )
            if verify:
                state.checks.extend(
                    verify_ring_structure(
                        ring, expected_n=ring.n, path=ppath
                    )
                )
            state.rings.append(ring)
            continue
        fpath = os.path.join(cpdir, fname)
        if verify:
            verify_file(fpath, read_manifest(fpath))
        graph = checked_load_graph(fpath)
        if graph.n_triples != int(entry["n_triples"]):
            raise IndexIntegrityError(
                fpath,
                f"checkpoint ring has {graph.n_triples} triples, "
                f"manifest says {entry['n_triples']}",
            )
        ring = Ring(graph)
        if verify:
            state.checks.extend(
                verify_ring_structure(
                    ring,
                    graph=graph,
                    expected_n=graph.n_triples,
                    path=fpath,
                )
            )
        state.rings.append(ring)
    state.checks.append(
        f"checkpoint epoch {state.epoch}: {len(state.rings)} ring(s), "
        f"{len(state.buffer)} buffered, {len(state.tombstones)} tombstoned"
    )
    return state


def prune_checkpoints(directory, keep: Optional[str]) -> None:
    """Delete checkpoint directories other than ``keep`` (and tmp junk)."""
    directory = str(directory)
    keep_name = os.path.basename(keep) if keep else None
    for name in os.listdir(directory):
        if not name.startswith(CHECKPOINT_PREFIX):
            continue
        if name == keep_name:
            continue
        shutil.rmtree(os.path.join(directory, name), ignore_errors=True)


# -- the durable index -----------------------------------------------------------


@dataclass
class RecoveryReport:
    """What :meth:`DurableDynamicRing.recover` did to get back up."""

    directory: str
    checkpoint_epoch: Optional[int]
    rings_loaded: int
    records_replayed: int
    records_skipped: int
    wal_dropped_bytes: int
    wal_corrupt_reason: Optional[str]
    n_triples: int
    checks: list[str] = field(default_factory=list)

    def summary(self) -> str:
        cp = (
            f"checkpoint epoch {self.checkpoint_epoch}"
            if self.checkpoint_epoch is not None
            else "no checkpoint"
        )
        tail = (
            f"; dropped {self.wal_dropped_bytes} torn tail byte(s) "
            f"({self.wal_corrupt_reason})"
            if self.wal_dropped_bytes
            else ""
        )
        return (
            f"{cp}, {self.rings_loaded} ring(s); replayed "
            f"{self.records_replayed} WAL record(s) "
            f"(skipped {self.records_skipped} already checkpointed)"
            f"{tail}; {self.n_triples} live triples"
        )


class DurableDynamicRing:
    """A :class:`DynamicRingIndex` whose updates survive crashes.

    Every ``insert``/``delete`` is WAL-appended and fsync'd before it
    is applied, so a ``True``/``False`` return is a durability receipt.
    Queries delegate to the wrapped index and therefore inherit its
    epoch-snapshot isolation — they never take the write lock.

    Use :meth:`create` for a fresh directory and :meth:`recover` (or
    :meth:`open`) for an existing one.
    """

    def __init__(
        self,
        directory: str,
        index: DynamicRingIndex,
        wal: WriteAheadLog,
        *,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
    ) -> None:
        self.directory = str(directory)
        self._index = index
        self._wal = wal
        self._checkpoint_bytes = checkpoint_bytes
        self._lock = threading.RLock()
        self._closed = False

    # -- constructors --------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory,
        graph: Graph,
        *,
        buffer_threshold: int = DEFAULT_BUFFER_THRESHOLD,
        fsync: bool = True,
        auto_compact: bool = True,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        policy: str = "static",
    ) -> "DurableDynamicRing":
        """Initialise a fresh durable index directory.

        ``graph`` fixes the universes (and dictionary) and may carry
        initial triples; those are made durable immediately through a
        first checkpoint, so the WAL only ever needs to cover updates.
        """
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        wal_path = os.path.join(directory, WAL_FILE)
        if os.path.exists(wal_path):
            raise WALError(wal_path, "directory already holds a durable index")

        universe = Graph(
            np.zeros((0, 3), dtype=np.int64),
            n_nodes=graph.n_nodes,
            n_predicates=graph.n_predicates,
            dictionary=graph.dictionary,
        )
        upath = os.path.join(directory, UNIVERSE_FILE)
        graph_io.save_graph(universe, upath)
        write_manifest(upath, compressed=False, graph=universe)

        index = DynamicRingIndex(
            graph,
            buffer_threshold=buffer_threshold,
            auto_compact=auto_compact,
            policy=policy,
        )
        wal = WriteAheadLog.create(
            wal_path, graph.n_nodes, graph.n_predicates, fsync=fsync
        )
        durable = cls(directory, index, wal, checkpoint_bytes=checkpoint_bytes)
        if graph.n_triples:
            durable.checkpoint()
        return durable

    @classmethod
    def recover(
        cls,
        directory,
        *,
        verify: bool = True,
        fsync: bool = True,
        buffer_threshold: int = DEFAULT_BUFFER_THRESHOLD,
        auto_compact: bool = True,
        checkpoint_bytes: int = DEFAULT_CHECKPOINT_BYTES,
        policy: str = "static",
        mmap: bool = False,
    ) -> tuple["DurableDynamicRing", RecoveryReport]:
        """Rebuild the last durably acknowledged state from disk.

        checkpoint → WAL-tail replay → structural verification; a torn
        WAL tail is truncated (those operations were never
        acknowledged), a corrupt checkpoint or unreadable WAL header
        raises :class:`IndexIntegrityError` loudly.  ``mmap=True``
        serves the checkpointed rings straight off their frozen packs
        (see :func:`load_checkpoint`).
        """
        directory = str(directory)
        upath = os.path.join(directory, UNIVERSE_FILE)
        if verify:
            verify_file(upath, read_manifest(upath))
        universe = checked_load_graph(upath)

        state = load_checkpoint(directory, verify=verify, mmap=mmap)
        wal_path = os.path.join(directory, WAL_FILE)
        wal, rep = WriteAheadLog.open(wal_path, fsync=fsync)

        if rep.n_nodes != universe.n_nodes or rep.n_predicates != universe.n_predicates:
            wal.close()
            raise IndexIntegrityError(
                wal_path,
                f"WAL universes ({rep.n_nodes}, {rep.n_predicates}) disagree "
                f"with {UNIVERSE_FILE} "
                f"({universe.n_nodes}, {universe.n_predicates})",
            )

        skip_below = 0
        if state is not None:
            if rep.generation == state.wal_generation:
                skip_below = state.wal_offset
            elif rep.generation < state.wal_generation:
                wal.close()
                raise IndexIntegrityError(
                    wal_path,
                    f"WAL generation {rep.generation} is older than the "
                    f"checkpoint's {state.wal_generation}",
                )
            index = DynamicRingIndex.from_components(
                universe,
                state.rings,
                state.buffer,
                state.tombstones,
                buffer_threshold=buffer_threshold,
                epoch=state.epoch,
                auto_compact=auto_compact,
                policy=policy,
            )
        else:
            index = DynamicRingIndex(
                universe,
                buffer_threshold=buffer_threshold,
                auto_compact=auto_compact,
                policy=policy,
            )

        replayed = skipped = 0
        for record in rep.records:
            if record.offset < skip_below:
                skipped += 1
                continue
            if record.op == OP_INSERT:
                index.insert(*record.triple)
            else:
                index.delete(*record.triple)
            replayed += 1

        durable = cls(directory, index, wal, checkpoint_bytes=checkpoint_bytes)
        report = RecoveryReport(
            directory=directory,
            checkpoint_epoch=state.epoch if state is not None else None,
            rings_loaded=len(state.rings) if state is not None else 0,
            records_replayed=replayed,
            records_skipped=skipped,
            wal_dropped_bytes=rep.dropped_bytes,
            wal_corrupt_reason=rep.corrupt_reason,
            n_triples=index.n_triples,
            checks=(state.checks if state is not None else [])
            + [f"WAL replay: {replayed} applied, {skipped} skipped"],
        )
        return durable, report

    @classmethod
    def open(cls, directory, **kwargs) -> "DurableDynamicRing":
        """:meth:`recover` without the report."""
        durable, _ = cls.recover(directory, **kwargs)
        return durable

    # -- updates -------------------------------------------------------------

    def insert(self, s: int, p: int, o: int) -> bool:
        """Durable insert: WAL + fsync, then apply.  Ack == durable."""
        triple = (int(s), int(p), int(o))
        with self._lock:
            self._ensure_open()
            self._index._check_ids(triple)  # validate before logging
            self._wal.append(OP_INSERT, *triple)
            return self._index.insert(*triple)

    def delete(self, s: int, p: int, o: int) -> bool:
        """Durable delete: WAL + fsync, then apply.  Ack == durable."""
        triple = (int(s), int(p), int(o))
        with self._lock:
            self._ensure_open()
            self._index._check_ids(triple)
            self._wal.append(OP_DELETE, *triple)
            return self._index.delete(*triple)

    def insert_labelled(self, s: str, p: str, o: str) -> bool:
        return self.insert(*self._index._encode_labels(s, p, o))

    def delete_labelled(self, s: str, p: str, o: str) -> bool:
        try:
            triple = self._index._encode_labels(s, p, o)
        except KeyError:
            return False
        return self.delete(*triple)

    # -- checkpoints / maintenance -------------------------------------------

    def checkpoint(self) -> str:
        """Fold the WAL into a fresh checkpoint; returns its directory.

        Runs under the writer lock, so the captured component set and
        the WAL offset describe one consistent epoch.  The WAL is reset
        (new generation) only after the pointer swap committed the
        checkpoint; a crash anywhere in between recovers through the
        old checkpoint + full WAL or the new checkpoint + empty tail —
        both equal to the acknowledged state.
        """
        with self._lock:
            self._ensure_open()
            snap = self._index.snapshot()
            cpdir = write_checkpoint(
                self.directory,
                epoch=snap.epoch,
                rings=snap.rings,
                buffer=snap.buffer,
                tombstones=snap.tombstones,
                n_nodes=self._wal.n_nodes,
                n_predicates=self._wal.n_predicates,
                wal_generation=self._wal.generation,
                wal_offset=self._wal.tell(),
            )
            self._wal.reset(self._wal.generation + 1)
            prune_checkpoints(self.directory, keep=cpdir)
            return cpdir

    def maintenance(self) -> bool:
        """One background step: compact if due, checkpoint if WAL grew."""
        with self._lock:
            if self._closed:
                return False
            worked = self._index.maintenance()
            if self._wal.tell() >= self._checkpoint_bytes:
                self.checkpoint()
                worked = True
            return worked

    @property
    def wal_bytes(self) -> int:
        return self._wal.tell()

    # -- queries (lock-free: snapshot isolation lives in the index) -----------

    @property
    def index(self) -> DynamicRingIndex:
        return self._index

    @property
    def graph(self) -> Graph:
        return self._index.graph

    @property
    def name(self) -> str:
        return "DurableDynamicRing"

    @property
    def epoch(self) -> int:
        return self._index.epoch

    def cache_generation(self) -> tuple:
        """Serving-cache invalidation token.

        Pairs the in-memory epoch with the WAL generation: the epoch
        catches inserts/deletes/compactions, the WAL generation catches
        checkpoint/recovery boundaries (after recovery the epoch counter
        restarts, so the epoch alone could collide with a pre-crash
        value — the WAL generation disambiguates).
        """
        return (self._index.epoch, self._wal.generation)

    @property
    def n_triples(self) -> int:
        return self._index.n_triples

    @property
    def n_components(self) -> int:
        return self._index.n_components

    def contains(self, s: int, p: int, o: int) -> bool:
        return self._index.contains(s, p, o)

    def evaluate(self, query, **kwargs):
        return self._index.evaluate(query, **kwargs)

    def count(self, query, **kwargs) -> int:
        return self._index.count(query, **kwargs)

    def explain(self, query):
        return self._index.explain(query)

    def to_graph(self) -> Graph:
        return self._index.to_graph()

    def size_in_bits(self) -> int:
        return self._index.size_in_bits()

    # -- lifecycle -----------------------------------------------------------

    def close(self, checkpoint: bool = False) -> None:
        """Flush and close the WAL (optionally checkpointing first)."""
        with self._lock:
            if self._closed:
                return
            if checkpoint:
                self.checkpoint()
            self._closed = True
            self._wal.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise WALError(self._wal.path, "durable index is closed")

    def __enter__(self) -> "DurableDynamicRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableDynamicRing({self.directory!r}, "
            f"n={self._index.n_triples}, epoch={self._index.epoch})"
        )


# -- offline verification (``repro verify <dir>``) -------------------------------


def verify_dynamic_dir(directory, samples: int = 32) -> dict:
    """Non-destructive integrity battery over a durable index directory.

    Checks the universe payload, the current checkpoint (manifest
    cross-consistency, per-ring SHA-256 + structural self-checks) and
    every WAL frame's CRC; a torn WAL tail is *reported* (it is exactly
    what recovery would truncate), while checksum or manifest damage
    raises :class:`IndexIntegrityError`.
    """
    directory = str(directory)
    report: dict = {"path": directory, "kind": "dynamic", "checks": []}

    upath = os.path.join(directory, UNIVERSE_FILE)
    verify_file(upath, read_manifest(upath))
    universe = checked_load_graph(upath)
    report["checks"].append("universe payload + checksum")
    report["n_nodes"] = universe.n_nodes
    report["n_predicates"] = universe.n_predicates

    state = load_checkpoint(directory, verify=True)
    if state is None:
        report["manifest"] = "no checkpoint yet (WAL-only index)"
        base = 0
    else:
        report["manifest"] = f"checkpoint epoch {state.epoch}"
        report["checks"].extend(state.checks)
        base = sum(r.n for r in state.rings) + len(state.buffer) - len(
            state.tombstones
        )
        # Frozen packs ride beside the .npz payloads; a torn pack would
        # poison mmap recovery, so deep-verify each one too.
        from repro.core.frozen import verify_frozen_layout

        cpdir = state.directory
        packs = sorted(
            name for name in os.listdir(cpdir) if name.endswith(".ring")
        )
        for name in packs:
            verify_frozen_layout(os.path.join(cpdir, name), deep=True)
        if packs:
            report["checks"].append(
                f"frozen pack layout + checksum ({len(packs)} pack(s))"
            )

    rep = replay(os.path.join(directory, WAL_FILE))
    report["checks"].append(
        f"WAL frames: {len(rep.records)} record(s), CRC clean through "
        f"offset {rep.valid_bytes}"
    )
    if rep.truncated:
        report["wal_tail"] = (
            f"{rep.dropped_bytes} torn byte(s) at tail "
            f"({rep.corrupt_reason}) — recoverable, never acknowledged"
        )
    if universe.n_nodes != rep.n_nodes or universe.n_predicates != rep.n_predicates:
        raise IndexIntegrityError(
            rep.path, "WAL universes disagree with universe.npz"
        )
    report["checks"].append("WAL header universes")

    # Exact live count: checkpoint state + the replayable WAL tail.
    skip_below = 0
    live: set[Triple] = set()
    if state is not None:
        if rep.generation == state.wal_generation:
            skip_below = state.wal_offset
        for ring in state.rings:
            live.update(ring.triple(i) for i in range(ring.n))
        live |= state.buffer
        live -= state.tombstones
        if len(live) != base:
            raise IndexIntegrityError(
                state.directory,
                f"checkpoint components yield {len(live)} live triples, "
                f"manifest arithmetic says {base}",
            )
    replayable = 0
    for record in rep.records:
        if record.offset < skip_below:
            continue
        replayable += 1
        if record.op == OP_INSERT:
            live.add(record.triple)
        else:
            live.discard(record.triple)
    report["checks"].append(
        f"live-set arithmetic ({replayable} tail record(s) applied)"
    )
    report["n_triples"] = len(live)
    report["compressed"] = False
    return report
