"""The unified resource governor every engine acquires its budget from.

Before this module each engine hand-rolled its own failure handling:
``core/ltj.py`` had a private ``_Deadline``, each pairwise baseline
duplicated a ``time.monotonic()`` loop, and ``relational/orders.py``
raised the builtin ``TimeoutError``.  :class:`ResourceBudget` replaces
all of them with one cooperative governor:

- **wall-clock deadline** — ``timeout`` seconds from construction;
- **op-count cap** — ``max_ops`` cooperative ticks (the branch-and-bound
  node budget of :func:`repro.relational.orders.exact_cover_size`);
- **max-solutions cap** — ``max_solutions``, consulted by the serving
  layer through :meth:`admit_solution`;
- **external cancellation** — a :class:`CancellationToken` another
  thread (or request handler) may trip at any time.

Engines call :meth:`tick` once per elementary operation; the clock and
the token are only consulted every ``tick_mask + 1`` operations, keeping
the hot path at one increment and one mask test.  Exhaustion raises the
shared typed exceptions: :class:`~repro.core.interface.QueryTimeout`
for deadline/op-budget, :class:`~repro.core.interface.QueryCancelled`
for token trips — so every engine fails identically and callers catch
one exception family.

A budget is also accepted anywhere a plain ``timeout`` float used to be:
:meth:`ResourceBudget.coerce` turns ``None``/seconds/budget into a
budget, which lets :class:`~repro.core.system.BaseQuerySystem` thread
one shared governor (with one shared op counter) through an engine
without changing any call signature.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Union

from repro.core.interface import QueryCancelled, QueryTimeout

DEFAULT_TICK_MASK = 0xFF  # consult the clock every 256 operations


class CancellationToken:
    """Thread-safe external cancellation signal.

    Hand the token to ``evaluate(..., cancellation=token)`` and call
    :meth:`cancel` from any thread; the engine raises
    :class:`~repro.core.interface.QueryCancelled` at its next
    cooperative check.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state})"


class ResourceBudget:
    """Cooperative budget shared by an entire query evaluation.

    Parameters
    ----------
    timeout:
        Wall-clock budget in seconds (``None`` = unlimited).
    max_ops:
        Cap on cooperative ticks (``None`` = unlimited).
    max_solutions:
        Cap consulted via :meth:`admit_solution` (``None`` = unlimited).
    token:
        Optional :class:`CancellationToken` checked alongside the clock.
    tick_mask:
        The clock/token are consulted when ``ops & tick_mask == 0``;
        pass ``0`` to check on every tick (exact op budgets).
    """

    __slots__ = (
        "timeout",
        "deadline",
        "max_ops",
        "max_solutions",
        "token",
        "tick_mask",
        "ops",
        "solutions",
        "row_demand",
        "_folded_ops",
    )

    def __init__(
        self,
        timeout: Optional[float] = None,
        max_ops: Optional[int] = None,
        max_solutions: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        tick_mask: int = DEFAULT_TICK_MASK,
    ) -> None:
        self.timeout = timeout
        # `timeout=0` means "already expired", not "unlimited".
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self.max_ops = max_ops
        self.max_solutions = max_solutions
        self.token = token
        self.tick_mask = tick_mask
        self.ops = 0
        self.solutions = 0
        # Upper bound on *raw* rows the consumer will ever pull from the
        # solution stream, or None when unbounded/unknown.  Set by the
        # serving layer only when raw rows equal admitted rows (no
        # projection dedup in between), so parallel drivers may cap each
        # slice block at the remaining demand without losing rows.
        self.row_demand: Optional[int] = None
        # Ops of THIS budget already folded into some parent via
        # ``parent.fold(self)``; makes repeated folds idempotent.
        self._folded_ops = 0

    # -- construction helpers ------------------------------------------------

    @classmethod
    def coerce(
        cls, value: Union[None, int, float, "ResourceBudget"]
    ) -> "ResourceBudget":
        """Accept what engines historically took as ``timeout``.

        ``None`` → unlimited budget; a number → fresh deadline budget;
        an existing budget → itself (sharing its op counter).
        """
        if value is None:
            return cls()
        if isinstance(value, ResourceBudget):
            return value
        return cls(timeout=float(value))

    def sub_budget(
        self,
        timeout: Optional[float] = None,
        max_ops: Optional[int] = None,
        max_solutions: Optional[int] = None,
    ) -> "ResourceBudget":
        """A child budget that can never outlive (or outspend) this one.

        The sharded serving tier hands each per-shard dispatch — and the
        coordinator's local join — a sub-budget instead of the parent:

        - the child's **deadline is clamped** to the parent's, so a
          per-shard ``timeout`` can only tighten it, never extend it;
        - the child **shares the parent's cancellation token**, so
          cancelling the query cancels every outstanding shard call;
        - the child's **op cap** is at most the parent's remaining
          allowance (its own counter starts at zero);
        - the child's work is accounted back through :meth:`fold`, which
          is idempotent per child — retried shards and repeated folds
          can never double-charge the parent.
        """
        child = ResourceBudget(
            timeout=timeout,
            max_ops=None,
            max_solutions=max_solutions,
            token=self.token,
            tick_mask=self.tick_mask,
        )
        if self.deadline is not None and (
            child.deadline is None or child.deadline > self.deadline
        ):
            child.deadline = self.deadline
            child.timeout = self.remaining_time()
        if self.max_ops is not None:
            remaining = max(self.max_ops - self.ops, 0)
            child.max_ops = (
                remaining if max_ops is None else min(max_ops, remaining)
            )
        elif max_ops is not None:
            child.max_ops = max_ops
        return child

    def fold(self, child: "ResourceBudget") -> int:
        """Charge ``child``'s unfolded ops to this budget; returns the delta.

        Safe to call any number of times per child (only the ops accrued
        since the previous fold are added) and never raises — the caller
        decides when to :meth:`check`.  This is how scatter-gather layers
        keep one parent governor honest across shard retries without
        double-counting work that was already accounted.
        """
        delta = child.ops - child._folded_ops
        if delta <= 0:
            return 0
        child._folded_ops = child.ops
        self.ops += delta
        return delta

    @property
    def unlimited(self) -> bool:
        """True when no constraint can ever fire."""
        return (
            self.deadline is None
            and self.max_ops is None
            and self.token is None
        )

    # -- the cooperative hot path ----------------------------------------------

    def tick(self) -> None:
        """Account one elementary operation; cheap unless due a check."""
        self.ops += 1
        if self.ops & self.tick_mask:
            return
        self.check()

    def tick_many(self, n: int) -> None:
        """Account ``n`` elementary operations served by one batch call.

        The batch kernels charge the budget exactly as ``n`` scalar
        :meth:`tick` calls would: the op counter advances by ``n`` and
        the clock/token are consulted whenever a check boundary (every
        ``tick_mask + 1`` ops) was crossed.
        """
        if n <= 0:
            return
        before = self.ops
        self.ops = before + n
        if (self.ops & ~self.tick_mask) != (before & ~self.tick_mask):
            self.check()

    def check(self) -> None:
        """Consult every constraint now (raises on exhaustion).

        The deadline outranks the cancellation token: the broker's
        watchdog *cancels* queries that overstay their deadline, so an
        expired query may observe both conditions — and must surface as
        the :class:`QueryTimeout` it is, not as a caller cancellation
        that happens to have won the watchdog-vs-tick race.
        """
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeout(f"deadline exceeded ({self.timeout:g}s)")
        if self.token is not None and self.token.cancelled:
            raise QueryCancelled("query cancelled by caller")
        if self.max_ops is not None and self.ops > self.max_ops:
            raise QueryTimeout(
                f"operation budget exhausted ({self.ops} > {self.max_ops} ops)"
            )

    def expired(self) -> bool:
        """Non-raising probe: would :meth:`check` raise right now?"""
        try:
            self.check()
        except (QueryTimeout, QueryCancelled):
            return True
        return False

    # -- solution accounting -----------------------------------------------------

    def admit_solution(self) -> bool:
        """Account one emitted solution.

        Returns whether *further* solutions may still be emitted —
        ``False`` as soon as this one reaches the cap, so the caller's
        ``if not budget.admit_solution(): break`` stops with exactly
        ``max_solutions`` rows collected.
        """
        self.solutions += 1
        return self.max_solutions is None or self.solutions < self.max_solutions

    def remaining_time(self) -> Optional[float]:
        """Seconds left on the wall clock (``None`` = unlimited)."""
        if self.deadline is None:
            return None
        return max(self.deadline - time.monotonic(), 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"ops={self.ops}"]
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout:g}s")
        if self.max_ops is not None:
            parts.append(f"max_ops={self.max_ops}")
        if self.max_solutions is not None:
            parts.append(f"max_solutions={self.max_solutions}")
        if self.token is not None:
            parts.append(repr(self.token))
        return f"ResourceBudget({', '.join(parts)})"
