"""Checksummed index persistence and structural self-checks.

``Ring.save``/``load`` used to deserialize a truncated or bit-flipped
``.npz`` into an index that silently returned wrong answers.  This
module makes corruption a *typed, loud* failure instead:

- **manifest** — ``save`` writes a JSON sidecar (``<path>.config.json``)
  carrying a format version, the ring configuration, the graph's shape
  (``n_triples``/``n_nodes``/``n_predicates``) and the SHA-256 of the
  ``.npz`` payload;
- **file check** — ``load`` re-hashes the payload and compares; any
  flipped or missing byte raises :class:`IndexIntegrityError` before a
  single query runs;
- **structural self-check** — after rebuild, the ring itself is
  validated: ``C``-array monotonicity and endpoints, wavelet-matrix
  level lengths and alphabets, ``n_triples`` cross-consistency with the
  manifest, and deterministic spot-check triple round-trips
  (``ring.triple(i)`` must equal the source row and ``contains`` it);
- **CLI** — ``python -m repro verify <index>`` runs the full battery
  and reports each check.

Legacy sidecars (``{"compressed": ...}`` only) still load; they simply
skip the checksum comparison and rely on the structural checks.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

import numpy as np

from repro.graph import io as graph_io
from repro.graph.dataset import Graph

MANIFEST_VERSION = 1
_SPOT_CHECK_SAMPLES = 32


class IndexIntegrityError(Exception):
    """A persisted index failed a checksum or structural self-check."""

    def __init__(self, path, reason: str) -> None:
        self.path = str(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


# -- on-disk plumbing ------------------------------------------------------------


def resolve_payload(path) -> str:
    """The actual ``.npz`` file behind ``path``.

    ``np.savez`` appends ``.npz`` when the name lacks it; mirror that so
    checksums and loads agree on the same file.
    """
    path = str(path)
    if os.path.exists(path):
        return path
    if not path.endswith(".npz") and os.path.exists(path + ".npz"):
        return path + ".npz"
    return path


def manifest_path(path) -> str:
    return str(path) + ".config.json"


def file_checksum(path) -> str:
    """SHA-256 of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_manifest(path, *, compressed: bool, graph: Graph) -> None:
    """Write the sidecar manifest next to a freshly saved index."""
    payload = resolve_payload(path)
    meta = {
        "format_version": MANIFEST_VERSION,
        "compressed": bool(compressed),
        "sha256": file_checksum(payload),
        "n_triples": int(graph.n_triples),
        "n_nodes": int(graph.n_nodes),
        "n_predicates": int(graph.n_predicates),
    }
    with open(manifest_path(path), "w") as f:
        json.dump(meta, f)


def read_manifest(path) -> Optional[dict]:
    """The sidecar's contents, or ``None`` when no sidecar exists.

    An unreadable/corrupt sidecar is itself an integrity failure.
    """
    mpath = manifest_path(path)
    if not os.path.exists(mpath):
        return None
    try:
        with open(mpath) as f:
            meta = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexIntegrityError(path, f"unreadable manifest: {exc}") from exc
    if not isinstance(meta, dict):
        raise IndexIntegrityError(path, "manifest is not a JSON object")
    return meta


def verify_file(path, manifest: Optional[dict] = None) -> None:
    """Existence + checksum check of the ``.npz`` payload."""
    payload = resolve_payload(path)
    if not os.path.exists(payload):
        raise IndexIntegrityError(path, "index file does not exist")
    if manifest is None:
        manifest = read_manifest(path)
    expected = (manifest or {}).get("sha256")
    if expected is not None:
        actual = file_checksum(payload)
        if actual != expected:
            raise IndexIntegrityError(
                path,
                f"checksum mismatch (expected {expected[:12]}…, "
                f"got {actual[:12]}…): file corrupted or truncated",
            )


def checked_load_graph(path) -> Graph:
    """``load_graph`` with every failure surfaced as an integrity error.

    Looked up through the module (not a bound import) so the fault
    registry's ``io.load`` hook applies here too.
    """
    payload = resolve_payload(path)
    try:
        return graph_io.load_graph(payload)
    except IndexIntegrityError:
        raise
    except Exception as exc:
        raise IndexIntegrityError(
            path, f"cannot deserialize index: {exc}"
        ) from exc


# -- structural self-checks ---------------------------------------------------------


def verify_ring_structure(
    ring,
    *,
    graph: Optional[Graph] = None,
    expected_n: Optional[int] = None,
    samples: int = _SPOT_CHECK_SAMPLES,
    path="<in-memory ring>",
) -> list[str]:
    """Validate a ring's internal invariants; returns the checks run.

    Raises :class:`IndexIntegrityError` on the first violation.  The
    checks mirror the construction invariants of
    :class:`~repro.core.ring.Ring` (§4.1): three equal-length zone
    wavelet matrices over the right alphabets, three monotone ``C``
    arrays ending at ``n``, and spot-checked triple round-trips.
    """
    from repro.core.ring import prev_attr
    from repro.graph.model import O, P, S

    checks: list[str] = []
    n = ring.n

    def fail(reason: str) -> None:
        raise IndexIntegrityError(path, reason)

    if expected_n is not None and n != expected_n:
        fail(f"n_triples mismatch: ring has {n}, expected {expected_n}")
    checks.append("n_triples cross-consistency")

    for zone in (S, P, O):
        wm = ring.zone_sequence(zone)
        symbol_attr = prev_attr(zone)
        if len(wm) != n:
            fail(f"zone {zone} wavelet matrix has {len(wm)} symbols, not {n}")
        if wm.sigma != ring.sigma(symbol_attr):
            fail(
                f"zone {zone} alphabet is {wm.sigma}, expected "
                f"{ring.sigma(symbol_attr)}"
            )
        expected_levels = max(1, (wm.sigma - 1).bit_length())
        if wm.levels != expected_levels:
            fail(
                f"zone {zone} has {wm.levels} wavelet levels, expected "
                f"{expected_levels}"
            )
        for level, bv in enumerate(wm._bits):
            if len(bv) != n:
                fail(
                    f"zone {zone} level {level} bitvector has {len(bv)} "
                    f"bits, not {n}"
                )
    checks.append("wavelet-matrix level lengths and alphabets")

    for attr in (S, P, O):
        c = np.asarray(ring.c_array(attr), dtype=np.int64)
        if len(c) != ring.sigma(attr) + 1:
            fail(
                f"C[{attr}] has {len(c)} entries, expected "
                f"{ring.sigma(attr) + 1}"
            )
        if len(c) and (c[0] != 0 or c[-1] != n):
            fail(
                f"C[{attr}] endpoints are ({int(c[0])}, {int(c[-1])}), "
                f"expected (0, {n})"
            )
        if len(c) > 1 and np.any(np.diff(c) < 0):
            fail(f"C[{attr}] is not monotonically non-decreasing")
    checks.append("C-array monotonicity and endpoints")

    if n and samples:
        step = max(1, n // samples)
        source = graph.triples if graph is not None else None
        for i in range(0, n, step):
            try:
                s, p, o = ring.triple(i)
            except Exception as exc:
                fail(f"triple({i}) raised {type(exc).__name__}: {exc}")
            if not (
                0 <= s < ring.sigma(S)
                and 0 <= p < ring.sigma(P)
                and 0 <= o < ring.sigma(O)
            ):
                fail(f"triple({i}) = {(s, p, o)} outside the universes")
            if not ring.contains(s, p, o):
                fail(f"triple({i}) = {(s, p, o)} fails its own membership test")
            if source is not None and tuple(source[i]) != (s, p, o):
                fail(
                    f"triple({i}) = {(s, p, o)} disagrees with the stored "
                    f"graph row {tuple(int(x) for x in source[i])}"
                )
        checks.append(f"spot-check triple round-trips ({min(samples, n)} samples)")
    return checks


def verify_index(path, samples: int = _SPOT_CHECK_SAMPLES) -> dict:
    """Full battery over a persisted index; the ``repro verify`` engine.

    Returns a report dict (``checks`` run, graph shape, configuration).
    Raises :class:`IndexIntegrityError` on any failure.  A *directory*
    is treated as a durable dynamic index (WAL + checkpoints) and
    dispatched to :func:`repro.reliability.wal.verify_dynamic_dir`.
    """
    if os.path.isdir(str(path)):
        from repro.reliability.wal import verify_dynamic_dir

        return verify_dynamic_dir(path, samples=samples)

    from repro.core.system import RingIndex

    report: dict = {"path": str(path), "checks": []}
    manifest = read_manifest(path)
    if manifest is not None and manifest.get("kind") == "frozen-ring":
        return _verify_frozen_pack(path, manifest, samples, report)
    report["manifest"] = "present" if manifest else "absent (legacy index)"
    verify_file(path, manifest)
    report["checks"].append("payload exists")
    if manifest and manifest.get("sha256"):
        report["checks"].append("sha256 checksum")

    graph = checked_load_graph(path)
    report["checks"].append("deserialization")
    if manifest is not None:
        for key, actual in (
            ("n_triples", graph.n_triples),
            ("n_nodes", graph.n_nodes),
            ("n_predicates", graph.n_predicates),
        ):
            expected = manifest.get(key)
            if expected is not None and expected != actual:
                raise IndexIntegrityError(
                    path,
                    f"{key} mismatch: manifest says {expected}, "
                    f"payload has {actual}",
                )
        report["checks"].append("manifest cross-consistency")

    compressed = bool((manifest or {}).get("compressed", False))
    index = RingIndex(graph, compressed=compressed)
    report["checks"].extend(
        verify_ring_structure(
            index.ring,
            graph=graph,
            expected_n=graph.n_triples,
            samples=samples,
            path=path,
        )
    )
    report.update(
        n_triples=graph.n_triples,
        n_nodes=graph.n_nodes,
        n_predicates=graph.n_predicates,
        compressed=compressed,
    )
    return report


def _verify_frozen_pack(
    path, manifest: dict, samples: int, report: dict
) -> dict:
    """Frozen-pack arm of :func:`verify_index`.

    Layout arithmetic + streamed SHA-256 first (no array is ever
    materialized — a 100 GB pack verifies in O(read) bytes and O(1)
    memory), then the structural spot checks over a memory-mapped open,
    which pages in only the bits the sampled triples touch.
    """
    from repro.core.frozen import open_frozen_ring, verify_frozen_layout

    report["manifest"] = "present"
    report["kind"] = "frozen-ring"
    report["checks"].extend(verify_frozen_layout(path, manifest, deep=True))
    ring, _ = open_frozen_ring(path, manifest, mmap=True, verify=False)
    report["checks"].append("memmap open")
    report["checks"].extend(
        verify_ring_structure(
            ring,
            expected_n=int(manifest["n_triples"]),
            samples=samples,
            path=path,
        )
    )
    report.update(
        n_triples=int(manifest["n_triples"]),
        n_nodes=int(manifest["n_nodes"]),
        n_predicates=int(manifest["n_predicates"]),
        compressed=False,
    )
    return report
