"""Index-order classes and minimum covers (§6, Table 3 of the paper).

An index *order* fixes how one physical index sorts the tuples; a wco
algorithm needs a *set* of orders such that any elimination order of the
query variables can be served.  The paper's six classes:

================  =========================  ==========================
class             index shape                requirement covered
================  =========================  ==========================
W                 flat permutation           whole elimination order π,
                                             no reordering of bound
                                             attributes
TW                flat + trie switching      each step (B, x): B is the
                                             prefix *set*, x comes next
CW                cyclic, unidirectional     whole π, bound set stays a
                                             run, extends backwards only
CTW               cyclic + switching         (B, x): B a run, x precedes
CBW               cyclic bidirectional       whole π, run may grow both
                                             ways (the ring, no switch)
CBTW              ring + switching           (B, x): B a run, x adjacent
                                             to either end
================  =========================  ==========================

Closed forms (Theorem 6.2): ``w(d) = d!``, ``cw(d) = (d-1)!`` and
``tw(d) = ceil(d/2) * C(d, floor(d/2))``.  The remaining classes are
solved as minimum set covers: exactly (branch and bound) when the search
space allows, otherwise as ``[lower, upper]`` bounds combining the
theorem's inequalities with greedy covers — precisely how the paper
filled Table 3.
"""

from __future__ import annotations

from itertools import permutations
from math import comb, factorial
from typing import Iterable, Optional, Sequence

from repro.core.interface import QueryTimeout
from repro.reliability.budget import ResourceBudget

Cycle = tuple[int, ...]
Requirement = tuple[frozenset[int], int]  # (bound set B, next attribute x)

CLASSES = ("w", "tw", "cw", "ctw", "cbw", "cbtw")


# -- closed forms (Theorem 6.2) -------------------------------------------------

def closed_form_w(d: int) -> int:
    """Flat, no switching: all ``d!`` permutations."""
    return factorial(d)


def closed_form_cw(d: int) -> int:
    """Cyclic unidirectional, no switching: ``(d-1)!`` necklaces."""
    return factorial(d - 1)


def closed_form_tw(d: int) -> int:
    """Flat with trie switching: ``ceil(d/2) * C(d, floor(d/2))``."""
    return -(-d // 2) * comb(d, d // 2)


# -- candidate index orders ---------------------------------------------------------

def flat_orders(d: int) -> list[tuple[int, ...]]:
    """All d! attribute permutations (the W/TW candidate set)."""
    return list(permutations(range(d)))


def cyclic_orders(d: int) -> list[Cycle]:
    """Necklaces: permutations canonicalised to start at attribute 0."""
    return [(0,) + rest for rest in permutations(range(1, d))]


def bidirectional_cyclic_orders(d: int) -> list[Cycle]:
    """Necklaces modulo reversal (a ring equals its mirror image)."""
    seen = set()
    out = []
    for cycle in cyclic_orders(d):
        mirrored = _canonical_cycle(tuple(reversed(cycle)))
        if mirrored in seen:
            continue
        seen.add(cycle)
        out.append(cycle)
    return out


def _canonical_cycle(cycle: Sequence[int]) -> Cycle:
    cycle = tuple(cycle)
    i = cycle.index(0)
    return cycle[i:] + cycle[:i]


# -- coverage predicates -----------------------------------------------------------

def _runs(cycle: Cycle, length: int) -> Iterable[tuple[int, ...]]:
    """All contiguous runs of ``length`` in the cyclic order."""
    d = len(cycle)
    if length == 0:
        yield ()
        return
    for start in range(d):
        yield tuple(cycle[(start + i) % d] for i in range(length))


def run_of(cycle: Cycle, bound: frozenset[int]) -> Optional[tuple[int, ...]]:
    """The contiguous run realising ``bound`` in ``cycle``, if any."""
    for run in _runs(cycle, len(bound)):
        if frozenset(run) == bound:
            return run
    return None


def covers_tw(order: tuple[int, ...], req: Requirement) -> bool:
    """Flat order + trie switching: B is the prefix set, x comes next."""
    bound, x = req
    k = len(bound)
    return frozenset(order[:k]) == bound and order[k] == x


def covers_ctw(cycle: Cycle, req: Requirement) -> bool:
    """Unidirectional: x must *precede* the run (backward extension)."""
    bound, x = req
    if not bound:
        return True  # any single attribute starts a backward search
    run = run_of(cycle, bound)
    if run is None:
        return False
    d = len(cycle)
    before = cycle[(cycle.index(run[0]) - 1) % d]
    return before == x


def covers_cbtw(cycle: Cycle, req: Requirement) -> bool:
    """Bidirectional: x adjacent to either end of the run."""
    bound, x = req
    if not bound:
        return True
    run = run_of(cycle, bound)
    if run is None:
        return False
    d = len(cycle)
    before = cycle[(cycle.index(run[0]) - 1) % d]
    after = cycle[(cycle.index(run[-1]) + 1) % d]
    return x in (before, after)


def covers_w(order: tuple[int, ...], pi: tuple[int, ...]) -> bool:
    """Flat order, no switching: only its own elimination order."""
    return order == pi


def covers_cw(cycle: Cycle, pi: tuple[int, ...]) -> bool:
    """Every step of π must extend the run backwards in this cycle."""
    for k in range(len(pi)):
        if not covers_ctw(cycle, (frozenset(pi[:k]), pi[k])):
            return False
    return True


def covers_cbw(cycle: Cycle, pi: tuple[int, ...]) -> bool:
    """Every step of π must keep the bound set a run (either end)."""
    for k in range(len(pi)):
        if not covers_cbtw(cycle, (frozenset(pi[:k]), pi[k])):
            return False
    return True


# -- requirement universes --------------------------------------------------------------

def switching_requirements(d: int) -> list[Requirement]:
    """All (B, x) pairs — what switching classes must cover."""
    out = []
    attrs = range(d)
    for mask in range(1 << d):
        bound = frozenset(a for a in attrs if mask >> a & 1)
        for x in attrs:
            if x not in bound:
                out.append((bound, x))
    return out


def elimination_orders(d: int) -> list[tuple[int, ...]]:
    """All full elimination permutations — for non-switching classes."""
    return list(permutations(range(d)))


# -- minimum set cover ----------------------------------------------------------------------

def greedy_cover(universe: list, cover_sets: list[set[int]]) -> list[int]:
    """Classic ln-n-approximate greedy cover; returns candidate indexes."""
    uncovered = set(range(len(universe)))
    chosen: list[int] = []
    while uncovered:
        best = max(range(len(cover_sets)), key=lambda i: len(cover_sets[i] & uncovered))
        gained = cover_sets[best] & uncovered
        if not gained:
            raise ValueError("universe is not coverable by the candidates")
        chosen.append(best)
        uncovered -= gained
    return chosen


def exact_cover_size(
    universe_size: int,
    cover_sets: list[set[int]],
    upper: int,
    node_budget: int = 2_000_000,
) -> Optional[int]:
    """Branch-and-bound minimum cover size; ``None`` if the budget blows.

    Branches on the lowest-index uncovered element (standard set-cover
    exact search); prunes with ``ceil(remaining / max_set)``.  The node
    budget is a :class:`~repro.reliability.budget.ResourceBudget` op
    cap, so exhaustion raises the shared
    :class:`~repro.core.interface.QueryTimeout` (not the builtin
    ``TimeoutError`` it used to leak) — here it is absorbed into the
    ``None`` return.
    """
    element_to_sets: list[list[int]] = [[] for _ in range(universe_size)]
    for idx, s in enumerate(cover_sets):
        for e in s:
            element_to_sets[e].append(idx)
    max_size = max((len(s) for s in cover_sets), default=1)
    best = upper
    budget = ResourceBudget(max_ops=node_budget, tick_mask=0)

    def bnb(uncovered: frozenset[int], used: int) -> None:
        nonlocal best
        budget.tick()
        if not uncovered:
            best = min(best, used)
            return
        if used + -(-len(uncovered) // max_size) >= best:
            return
        pivot = min(uncovered)
        for idx in element_to_sets[pivot]:
            bnb(uncovered - cover_sets[idx], used + 1)

    try:
        bnb(frozenset(range(universe_size)), 0)
        return best
    except QueryTimeout:
        return None


def minimum_orders(
    cls: str, d: int, node_budget: int = 2_000_000
) -> tuple[int, int]:
    """``(lower, upper)`` bound on the number of orders class ``cls``
    must index for arity ``d``; equal entries mean an exact value."""
    if cls not in CLASSES:
        raise ValueError(f"unknown class {cls!r}; expected one of {CLASSES}")
    if d < 2:
        raise ValueError("arity must be at least 2")
    if cls == "w":
        n = closed_form_w(d)
        return n, n
    if cls == "cw":
        n = closed_form_cw(d)
        return n, n
    if cls == "tw":
        n = closed_form_tw(d)
        return n, n

    if cls == "ctw":
        candidates = cyclic_orders(d)
        universe = switching_requirements(d)
        predicate = covers_ctw
        lower_hint = -(-closed_form_tw(d) // d)  # Thm 6.2: ctw >= tw/d
    elif cls == "cbtw":
        candidates = bidirectional_cyclic_orders(d)
        universe = switching_requirements(d)
        predicate = covers_cbtw
        lower_hint = -(-closed_form_tw(d) // (2 * d))
    else:  # cbw
        candidates = bidirectional_cyclic_orders(d)
        universe = elimination_orders(d)
        predicate = covers_cbw
        lower_hint = -(-closed_form_cw(d) // (1 << (d - 2)))

    cover_sets = [
        {i for i, req in enumerate(universe) if predicate(cand, req)}
        for cand in candidates
    ]
    upper = len(greedy_cover(universe, cover_sets))
    exact = exact_cover_size(len(universe), cover_sets, upper, node_budget)
    if exact is not None:
        return exact, exact
    return max(lower_hint, 1), upper


def find_cover(cls: str, d: int) -> list[Cycle]:
    """A concrete (greedy) set of orders realising class ``cls`` —
    what :class:`~repro.relational.ring_d.RelationalRingSystem` indexes."""
    if cls == "ctw":
        candidates: list = cyclic_orders(d)
        universe: list = switching_requirements(d)
        predicate = covers_ctw
    elif cls == "cbtw":
        candidates = bidirectional_cyclic_orders(d)
        universe = switching_requirements(d)
        predicate = covers_cbtw
    elif cls == "tw":
        candidates = flat_orders(d)
        universe = switching_requirements(d)
        predicate = covers_tw
    else:
        raise ValueError("find_cover supports tw, ctw and cbtw")
    cover_sets = [
        {i for i, req in enumerate(universe) if predicate(cand, req)}
        for cand in candidates
    ]
    return [candidates[i] for i in greedy_cover(universe, cover_sets)]


def table3(
    d_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    node_budget: int = 2_000_000,
) -> list[dict]:
    """Reproduce Table 3: orders per class for each arity.

    Entries are ``(lower, upper)`` tuples; equal bounds are exact.
    """
    rows = []
    for d in d_values:
        row = {"d": d}
        for cls in CLASSES:
            row[cls] = minimum_orders(cls, d, node_budget)
        rows.append(row)
    return rows
