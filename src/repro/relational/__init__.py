"""Rings in higher dimensions (§6 of the paper).

- :mod:`repro.relational.orders` — the index-order classes of Table 3
  (W, TW, CW, CTW, CBW, CBTW): coverage predicates, closed forms, exact
  minimum covers for small arities and greedy bounds beyond.
- :mod:`repro.relational.relation` — a d-ary relation container and
  arity-d patterns.
- :mod:`repro.relational.ring_d` — :class:`RelationRing` (one cyclic
  order over d attributes) and :class:`RelationalRingSystem`, which keeps
  the ``cbtw(d)``-many rings a wco LTJ needs (Theorem 6.1/6.2).
"""

from repro.relational.orders import (
    closed_form_cw,
    closed_form_tw,
    closed_form_w,
    minimum_orders,
    table3,
)
from repro.relational.relation import Relation, RelationPattern
from repro.relational.ring_d import RelationalRingSystem, RelationRing

__all__ = [
    "Relation",
    "RelationPattern",
    "RelationRing",
    "RelationalRingSystem",
    "closed_form_cw",
    "closed_form_tw",
    "closed_form_w",
    "minimum_orders",
    "table3",
]
