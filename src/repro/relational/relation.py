"""d-ary relations and tuple patterns (the §6 generalisation).

A :class:`Relation` is the arity-d analogue of
:class:`~repro.graph.Graph`: a sorted, deduplicated ``(n, d)`` id array
with per-attribute universes.  A :class:`RelationPattern` generalises
:class:`~repro.graph.TriplePattern` to any arity, exposing the same
interface the LTJ engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

import numpy as np

from repro.graph.model import Var

Term = Union[Var, int]


class Relation:
    """An immutable set of d-ary tuples over per-attribute universes."""

    def __init__(
        self, tuples: np.ndarray, sigmas: Sequence[int] | None = None
    ) -> None:
        arr = np.asarray(tuples, dtype=np.int64)
        if arr.ndim != 2:
            raise ValueError("tuples must form an (n, d) array")
        if arr.shape[1] < 2:
            raise ValueError("arity must be at least 2")
        if len(arr) and arr.min() < 0:
            raise ValueError("ids must be non-negative")
        arr = np.unique(arr, axis=0) if len(arr) else arr
        self._tuples = arr
        d = arr.shape[1]
        if sigmas is None:
            sigmas = [
                int(arr[:, a].max()) + 1 if len(arr) else 1 for a in range(d)
            ]
        sigmas = [int(s) for s in sigmas]
        if len(sigmas) != d:
            raise ValueError("one universe size per attribute required")
        for a in range(d):
            if len(arr) and int(arr[:, a].max()) >= sigmas[a]:
                raise ValueError(f"attribute {a} exceeds its universe")
        self._sigmas = tuple(sigmas)

    @property
    def tuples(self) -> np.ndarray:
        return self._tuples

    @property
    def arity(self) -> int:
        return self._tuples.shape[1]

    @property
    def n(self) -> int:
        return len(self._tuples)

    def sigma(self, attr: int) -> int:
        return self._sigmas[attr]

    @property
    def sigmas(self) -> tuple[int, ...]:
        return self._sigmas

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for row in self._tuples:
            yield tuple(int(v) for v in row)

    def __contains__(self, item) -> bool:
        target = tuple(int(v) for v in item)
        return any(t == target for t in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation(n={self.n}, arity={self.arity})"


@dataclass(frozen=True)
class RelationPattern:
    """An arity-d tuple pattern mixing variables and constants."""

    terms: tuple[Term, ...]

    def __init__(self, *terms: Term) -> None:
        if len(terms) == 1 and isinstance(terms[0], (tuple, list)):
            terms = tuple(terms[0])
        if len(terms) < 2:
            raise ValueError("patterns need arity >= 2")
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Var]:
        seen: list[Var] = []
        for term in self.terms:
            if isinstance(term, Var) and term not in seen:
                seen.append(term)
        return seen

    def variable_positions(self, var: Var) -> list[int]:
        return [i for i, term in enumerate(self.terms) if term == var]

    def constants(self) -> list[tuple[int, int]]:
        return [
            (i, term)
            for i, term in enumerate(self.terms)
            if not isinstance(term, Var)
        ]

    def has_repeated_variable(self) -> bool:
        vars_ = [t for t in self.terms if isinstance(t, Var)]
        return len(vars_) != len(set(vars_))

    def is_fully_bound(self) -> bool:
        return not any(isinstance(t, Var) for t in self.terms)

    def substitute(self, binding: dict[Var, int]) -> "RelationPattern":
        return RelationPattern(
            *(binding.get(t, t) if isinstance(t, Var) else t for t in self.terms)
        )

    def __repr__(self) -> str:
        return "(" + " ".join(
            repr(t) if isinstance(t, Var) else str(t) for t in self.terms
        ) + ")"
