"""Rings over d-ary relations (Theorem 6.1) and the multi-ring system.

A :class:`RelationRing` fixes one cyclic order of the ``d`` attributes
and stores ``d`` zones — zone ``j`` holds the tuples sorted by the
rotation starting at cyclic position ``j``, represented by the wavelet
matrix of the *preceding* attribute's values (the BWT symbol), plus a
``C`` array per position.  Exactly the arity-3 ring, generalised.

Leaps extend a cyclically-contiguous bound run *backwards* in
``O(log U)``; extending *forwards* verifies candidates with an
``O(d log U)`` LF-walk per step, matching the §6 cost analysis ("we can
extend the range to include the preceding column in O(log U) time, but
extending the range forwards takes O(d log U)").

Since a single cyclic order cannot keep every bound set contiguous once
``d >= 4``, :class:`RelationalRingSystem` indexes the ``cbtw(d)``-many
rings computed by :func:`repro.relational.orders.find_cover` and routes
each leap to a ring that supports it — Table 3's CBTW row in executable
form.  Variables repeated inside one tuple pattern are rejected, exactly
as the paper's §6 scopes them out.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.interface import first_candidate
from repro.core.ltj import LeapfrogTrieJoin
from repro.graph.model import BasicGraphPattern, Var
from repro.relational.orders import Cycle, find_cover
from repro.relational.relation import Relation, RelationPattern
from repro.sequences.wavelet_matrix import WaveletMatrix


class UnsupportedEliminationOrder(Exception):
    """No indexed ring supports the requested leap (cover too small)."""


class RelationRing:
    """One cyclic order over a d-ary relation."""

    def __init__(self, relation: Relation, order: Sequence[int]) -> None:
        order = tuple(order)
        d = relation.arity
        if sorted(order) != list(range(d)):
            raise ValueError("order must be a permutation of the attributes")
        self.order = order
        self._d = d
        self._n = relation.n
        self._sigmas = relation.sigmas
        self._position_of = {attr: j for j, attr in enumerate(order)}
        t = relation.tuples
        self._seq: list[WaveletMatrix] = []
        self._c: list[np.ndarray] = []
        for j in range(d):
            rot = [order[(j + i) % d] for i in range(d)]
            # numpy lexsort: last key is primary.
            sort_idx = np.lexsort(tuple(t[:, a] for a in reversed(rot)))
            prev_attr = order[(j - 1) % d]
            self._seq.append(
                WaveletMatrix(t[sort_idx, prev_attr], self._sigmas[prev_attr])
            )
            attr = order[j]
            counts = (
                np.bincount(t[:, attr], minlength=self._sigmas[attr])
                if len(t)
                else np.zeros(self._sigmas[attr], dtype=np.int64)
            )
            c = np.zeros(self._sigmas[attr] + 1, dtype=np.int64)
            np.cumsum(counts, out=c[1:])
            self._c.append(c)

    # -- geometry -------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def arity(self) -> int:
        return self._d

    def position_of(self, attr: int) -> int:
        return self._position_of[attr]

    def run_for(self, bound_attrs: frozenset[int]) -> Optional[tuple[int, int]]:
        """``(start_position, length)`` if the attributes form a
        cyclically contiguous run in this ring's order, else ``None``."""
        k = len(bound_attrs)
        if k == 0 or k == self._d:
            return (0, k)
        positions = {self._position_of[a] for a in bound_attrs}
        for start in positions:
            if all((start + i) % self._d in positions for i in range(k)):
                return (start, k)
        return None

    # -- ranges ------------------------------------------------------------------

    def backward_step(
        self, zone: int, lo: int, hi: int, symbol: int
    ) -> tuple[int, int, int]:
        target = (zone - 1) % self._d
        base = int(self._c[target][symbol])
        wm = self._seq[zone]
        return (target, base + wm.rank(symbol, lo), base + wm.rank(symbol, hi))

    def range_for_run(
        self, start: int, values: Sequence[int]
    ) -> Optional[tuple[int, int, int]]:
        """Zone state of the run at positions ``start .. start+len-1``
        holding ``values`` (in run order); ``None`` when empty."""
        k = len(values)
        if k == 0:
            return (start, 0, self._n)
        for i, v in enumerate(values):
            attr = self.order[(start + i) % self._d]
            if not 0 <= v < self._sigmas[attr]:
                return None
        last_pos = (start + k - 1) % self._d
        c = self._c[last_pos]
        v = values[-1]
        state = (last_pos, int(c[v]), int(c[v + 1]))
        for i in range(k - 2, -1, -1):
            if state[1] >= state[2]:
                return None
            state = self.backward_step(state[0], state[1], state[2], values[i])
        return state if state[1] < state[2] else None

    # -- leaps ------------------------------------------------------------------------

    def next_value(self, attr: int, c: int) -> Optional[int]:
        pos = self._position_of[attr]
        carr = self._c[pos]
        if c < 0:
            c = 0
        if c >= self._sigmas[attr]:
            return None
        base = int(carr[c])
        if base >= self._n:
            return None
        value = int(np.searchsorted(carr, base, side="right")) - 1
        return value if value < self._sigmas[attr] else None

    def backward_leap(
        self, zone: int, lo: int, hi: int, c: int
    ) -> Optional[int]:
        return self._seq[zone].next_in_range(lo, hi, c)

    def forward_leap(
        self, start: int, values: Sequence[int], c: int
    ) -> Optional[int]:
        """Smallest value ``>= c`` of the attribute *after* the run.

        Candidates are zone-``t`` rows preceded by the run's last value;
        each is verified by walking LF backwards across the whole run
        (O(|run| log U) per candidate — the §6 forward-extension cost).
        """
        k = len(values)
        t = (start + k) % self._d
        attr = self.order[t]
        if c < 0:
            c = 0
        if c >= self._sigmas[attr]:
            return None
        wm = self._seq[t]
        carr = self._c[t]
        last_value = values[-1]
        rank = wm.rank(last_value, int(carr[c]))
        total = wm.rank(last_value, self._n)
        while rank < total:
            q = wm.select(last_value, rank + 1)
            if self._verify_run(t, q, start, values):
                value = int(np.searchsorted(carr, q, side="right")) - 1
                return value if value < self._sigmas[attr] else None
            rank += 1
        return None

    def _verify_run(
        self, zone: int, row: int, start: int, values: Sequence[int]
    ) -> bool:
        """Check that the rotation at (zone, row) is preceded by the run."""
        k = len(values)
        # First step consumes the (already matched) last run value.
        state_zone, state_row = zone, row
        for i in range(k - 1, -1, -1):
            symbol = self._seq[state_zone][state_row]
            if symbol != values[i]:
                return False
            target = (state_zone - 1) % self._d
            state_row = int(self._c[target][symbol]) + self._seq[state_zone].rank(
                symbol, state_row
            )
            state_zone = target
        return True

    # -- retrieval ------------------------------------------------------------------------

    def tuple_at(self, i: int) -> tuple[int, ...]:
        """Recover the i-th tuple (sorted by this ring's cyclic order)."""
        if not 0 <= i < self._n:
            raise IndexError(f"tuple index {i} out of range [0, {self._n})")
        out = [0] * self._d
        zone, row = 0, i
        for _ in range(self._d):
            symbol = self._seq[zone][row]
            prev_pos = (zone - 1) % self._d
            out[self.order[prev_pos]] = symbol
            row = int(self._c[prev_pos][symbol]) + self._seq[zone].rank(symbol, row)
            zone = prev_pos
        return tuple(out)

    def size_in_bits(self) -> int:
        seq_bits = sum(wm.size_in_bits() for wm in self._seq)
        entry_bits = max(1, int(self._n).bit_length())
        c_bits = sum(entry_bits * len(c) for c in self._c)
        return seq_bits + c_bits + 256


class RelationRingIterator:
    """LTJ trie-iterator over a set of rings covering class CBTW."""

    def __init__(self, rings: Sequence[RelationRing],
                 pattern: RelationPattern) -> None:
        if pattern.has_repeated_variable():
            raise UnsupportedEliminationOrder(
                "repeated variables in one tuple pattern are outside the "
                "d-ary ring's wco scope (paper §6)"
            )
        self._rings = rings
        self._pattern = pattern
        self._constants: dict[int, int] = dict(pattern.constants())
        self._var_position = {
            var: pattern.variable_positions(var)[0] for var in pattern.variables()
        }
        self._stack: list[Var] = []

    @property
    def pattern(self) -> RelationPattern:
        return self._pattern

    def _bound_attrs(self) -> frozenset[int]:
        return frozenset(self._constants)

    def _run_values(self, ring: RelationRing, start: int, k: int) -> list[int]:
        return [
            self._constants[ring.order[(start + i) % ring.arity]] for i in range(k)
        ]

    def count(self) -> int:
        bound = self._bound_attrs()
        if not bound:
            return self._rings[0].n
        for ring in self._rings:
            run = ring.run_for(bound)
            if run is not None:
                state = ring.range_for_run(
                    run[0], self._run_values(ring, run[0], run[1])
                )
                return 0 if state is None else state[2] - state[1]
        # Bound set contiguous in no ring (can happen transiently when an
        # explicit variable order sidesteps the cover); conservative.
        return self._rings[0].n

    def leap(self, var: Var, c: int) -> Optional[int]:
        pos = self._var_position[var]
        bound = self._bound_attrs()
        if not bound:
            return self._rings[0].next_value(pos, c)
        # Prefer a backward leap: a ring where bound ∪ {attr} is a run
        # with the new attribute at the front.
        for ring in self._rings:
            run = ring.run_for(bound)
            if run is None:
                continue
            start, k = run
            before = ring.order[(start - 1) % ring.arity]
            if before == pos:
                state = ring.range_for_run(start, self._run_values(ring, start, k))
                if state is None:
                    return None
                return ring.backward_leap(state[0], state[1], state[2], c)
        for ring in self._rings:
            run = ring.run_for(bound)
            if run is None:
                continue
            start, k = run
            after = ring.order[(start + k) % ring.arity]
            if after == pos:
                return ring.forward_leap(
                    start, self._run_values(ring, start, k), c
                )
        raise UnsupportedEliminationOrder(
            f"no indexed ring supports extending {sorted(bound)} by {pos}"
        )

    def bind(self, var: Var, value: int) -> None:
        self._stack.append(var)
        self._constants[self._var_position[var]] = value

    def unbind(self, var: Var) -> None:
        if not self._stack or self._stack[-1] != var:
            raise ValueError("unbind order violation")
        self._stack.pop()
        del self._constants[self._var_position[var]]

    def values(self, var: Var) -> Iterator[int]:
        c = 0
        while True:
            value = self.leap(var, c)
            if value is None:
                return
            yield value
            c = value + 1

    def preferred_lonely(self, candidates: Iterable[Var]) -> Var:
        return first_candidate(candidates)


class RelationalRingSystem:
    """Worst-case-optimal joins over d-ary relations with CBTW rings."""

    name = "RelationalRing"

    def __init__(
        self,
        relation: Relation,
        orders: Sequence[Cycle] | None = None,
    ) -> None:
        self._relation = relation
        if orders is None:
            orders = find_cover("cbtw", relation.arity)
        self._rings = [RelationRing(relation, o) for o in orders]
        self._engine = LeapfrogTrieJoin(self.iterator, relation.n)

    @property
    def rings(self) -> list[RelationRing]:
        return list(self._rings)

    @property
    def orders(self) -> list[Cycle]:
        return [r.order for r in self._rings]

    def iterator(self, pattern: RelationPattern) -> RelationRingIterator:
        return RelationRingIterator(self._rings, pattern)

    def evaluate(
        self,
        patterns: Sequence[RelationPattern],
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> list[dict[Var, int]]:
        """Join the tuple patterns (Theorem 6.1)."""
        bgp = BasicGraphPattern(list(patterns))
        out = []
        for solution in self._engine.evaluate(bgp, timeout=timeout):
            out.append(solution)
            if limit is not None and len(out) >= limit:
                break
        return out

    def size_in_bits(self) -> int:
        return sum(r.size_in_bits() for r in self._rings)
