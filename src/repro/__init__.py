"""repro — a reproduction of *Worst-Case Optimal Graph Joins in Almost
No Space* (Arroyuelo, Hogan, Navarro, Reutter, Rojas-Ledesma, Soto;
SIGMOD 2021).

Public API tour:

>>> from repro import Graph, RingIndex
>>> graph = Graph.from_string_triples([("a", "knows", "b")])
>>> index = RingIndex(graph)
>>> index.evaluate("?x knows ?y", decode=True)
[{'x': 'a', 'y': 'b'}]

Subpackages: :mod:`repro.bits` (succinct substrate),
:mod:`repro.sequences` (wavelet matrices), :mod:`repro.text` (BWT
machinery), :mod:`repro.graph` (data model), :mod:`repro.core` (ring +
LTJ), :mod:`repro.baselines` (the paper's competitor regimes),
:mod:`repro.relational` (§6 d-ary rings, Table 3),
:mod:`repro.bench` (evaluation harness).
"""

from repro.core import (
    CompressedRingIndex,
    QueryCancelled,
    QueryError,
    QueryExecutionError,
    QueryResult,
    QueryTimeout,
    RingIndex,
)
from repro.core.dynamic import DynamicRingIndex
from repro.graph import (
    BasicGraphPattern,
    Dictionary,
    Graph,
    Triple,
    TriplePattern,
    Var,
    parse_bgp,
)
from repro.reliability import (
    CancellationToken,
    IndexIntegrityError,
    ResourceBudget,
)

__version__ = "1.0.0"

__all__ = [
    "BasicGraphPattern",
    "CancellationToken",
    "CompressedRingIndex",
    "Dictionary",
    "DynamicRingIndex",
    "Graph",
    "IndexIntegrityError",
    "QueryCancelled",
    "QueryError",
    "QueryExecutionError",
    "QueryResult",
    "QueryTimeout",
    "ResourceBudget",
    "RingIndex",
    "Triple",
    "TriplePattern",
    "Var",
    "parse_bgp",
    "__version__",
]
