#!/usr/bin/env python
"""CI perf smoke: run the kernel + Table-1 benchmarks at quick scale.

Runs ``benchmarks/bench_kernels.py`` and ``benchmarks/
bench_table1_space_time.py`` under pytest with small sizes, failing the
build if either crashes or a speedup gate trips, and leaves the
machine-readable ``BENCH_kernels.json`` artifact behind.  Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [-o BENCH_kernels.json]

Exit status is pytest's, so any collection error, assertion failure or
crash fails CI.  This is a *smoke* — timings at these sizes are noisy;
the artifact's speedup columns are the signal, not the absolute times.
"""

from __future__ import annotations

import argparse
import os
import sys

import pytest

QUICK_ENV = {
    # Small graph / few queries for the LTJ half and table1.
    "REPRO_BENCH_N": "1500",
    "REPRO_BENCH_QUERIES": "1",
    # Small structures for the kernel half (still >> one superblock).
    "REPRO_BENCH_KERNEL_N": str(1 << 15),
    "REPRO_BENCH_KERNEL_BATCH": str(1 << 12),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_kernels.json",
        help="where bench_kernels.py writes its JSON artifact",
    )
    args = parser.parse_args(argv)

    for key, value in QUICK_ENV.items():
        os.environ.setdefault(key, value)
    os.environ["REPRO_BENCH_KERNELS_OUT"] = args.output

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    code = pytest.main(
        [
            os.path.join(root, "benchmarks", "bench_kernels.py"),
            os.path.join(root, "benchmarks", "bench_table1_space_time.py"),
            "-q",
            "--benchmark-disable-gc",
        ]
    )
    if code == 0 and os.path.exists(args.output):
        print(f"perf smoke OK; wrote {args.output}")
    return int(code)


if __name__ == "__main__":
    sys.exit(main())
