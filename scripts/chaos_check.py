#!/usr/bin/env python
"""Chaos check: queries under random injected faults, no silent lies.

Runs a fixed workload of example queries against a ring index while a
seeded mix of faults (latency, dropped probability, hard errors) is
injected into the succinct hot paths.  Each run must end in exactly one
of the allowed outcomes:

- **correct** — results identical to the fault-free reference;
- **typed failure** — ``QueryTimeout`` / ``QueryCancelled`` /
  ``QueryExecutionError`` / ``IndexIntegrityError``;
- **truncated** — with ``partial=True``, a flagged prefix of the
  reference (never rows outside it).

Anything else — a wrong answer, an extra row, an unexpected exception
type — is a chaos failure and the script exits non-zero.  Run it as::

    PYTHONPATH=src python scripts/chaos_check.py [--rounds 40] [--seed 0]
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core import (
    QueryCancelled,
    QueryExecutionError,
    QueryTimeout,
    RingIndex,
)
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.generators import random_graph
from repro.reliability.faults import Fault, InjectedFault, available_sites, inject_faults
from repro.reliability.integrity import IndexIntegrityError

X, Y, Z = Var("x"), Var("y"), Var("z")

WORKLOAD = [
    ("single", BasicGraphPattern([TriplePattern(X, 0, Y)])),
    (
        "two-hop",
        BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z)]),
    ),
    (
        "triangle",
        BasicGraphPattern(
            [
                TriplePattern(X, 0, Y),
                TriplePattern(Y, 0, Z),
                TriplePattern(Z, 0, X),
            ]
        ),
    ),
    (
        "star",
        BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)]),
    ),
]

# Sites worth randomly arming; I/O sites are exercised separately by the
# integrity tests, and latency there would not be seen by a query.
QUERY_SITES = [
    "wavelet.rank",
    "wavelet.select",
    "wavelet.range_next_value",
    "wavelet.access",
    "bitvector.access",
    "bitvector.rank",
    "bitvector.select",
    # Batch kernels: the default engine routes lonely-variable ranges
    # and single-iterator sweeps through these, so chaos must arm them
    # too or the fast path would run fault-free.
    "bitvector.rank_many",
    "bitvector.select_many",
    "bitvector.access_many",
    "wavelet.rank_many",
    "wavelet.extract_at",
]

ALLOWED_ERRORS = (
    QueryTimeout,
    QueryCancelled,
    QueryExecutionError,
    IndexIntegrityError,
)


def random_faults(rng: random.Random) -> list[Fault]:
    """A random (but reproducible) fault mix for one round."""
    faults = []
    for site in rng.sample(QUERY_SITES, k=rng.randint(1, 3)):
        kind = rng.choice(["latency", "error", "flaky-error"])
        if kind == "latency":
            faults.append(
                Fault(site, probability=rng.uniform(0.05, 1.0),
                      latency=rng.uniform(0.0001, 0.002))
            )
        elif kind == "error":
            faults.append(Fault(site, probability=1.0, error=InjectedFault))
        else:
            faults.append(
                Fault(site, probability=rng.uniform(0.01, 0.3),
                      error=InjectedFault)
            )
    return faults


def run(rounds: int, seed: int) -> int:
    rng = random.Random(seed)
    graph = random_graph(600, n_nodes=30, n_predicates=2, seed=5)
    index = RingIndex(graph)

    print(f"chaos check: {rounds} rounds over {len(WORKLOAD)} queries, "
          f"seed {seed}, sites: {', '.join(available_sites())}")

    # Fault-free reference answers (and sanity that they are non-empty).
    reference = {
        name: {frozenset(mu.items()) for mu in index.evaluate(bgp)}
        for name, bgp in WORKLOAD
    }
    assert all(reference.values()), "workload queries must have solutions"

    outcomes = {"correct": 0, "typed-failure": 0, "truncated": 0}
    failures: list[str] = []

    for round_no in range(rounds):
        name, bgp = WORKLOAD[round_no % len(WORKLOAD)]
        faults = random_faults(rng)
        partial = rng.random() < 0.5
        timeout = rng.choice([None, 0.02, 0.1])
        label = (
            f"round {round_no:3d} {name:8s} "
            f"[{', '.join(f.site for f in faults)}] "
            f"timeout={timeout} partial={partial}"
        )
        try:
            with inject_faults(*faults, seed=rng.randrange(2**31)):
                result = index.evaluate(bgp, timeout=timeout, partial=partial)
        except ALLOWED_ERRORS as exc:
            outcomes["typed-failure"] += 1
            print(f"  {label}: {type(exc).__name__}")
            continue
        except Exception as exc:  # noqa: BLE001 - the whole point
            failures.append(f"{label}: unexpected {type(exc).__name__}: {exc}")
            print(f"  {label}: UNEXPECTED {type(exc).__name__}")
            continue

        rows = {frozenset(mu.items()) for mu in result}
        if not rows <= reference[name]:
            bogus = len(rows - reference[name])
            failures.append(f"{label}: {bogus} row(s) not in the reference")
            print(f"  {label}: WRONG ANSWER ({bogus} bogus rows)")
        elif getattr(result, "truncated", False):
            outcomes["truncated"] += 1
            print(f"  {label}: truncated prefix ({len(rows)} rows)")
        elif rows == reference[name]:
            outcomes["correct"] += 1
            print(f"  {label}: correct ({len(rows)} rows)")
        else:
            # Complete (unflagged) but missing rows: a silent lie.
            failures.append(
                f"{label}: result not flagged truncated but misses "
                f"{len(reference[name]) - len(rows)} row(s)"
            )
            print(f"  {label}: SILENTLY INCOMPLETE")

    print(
        f"\noutcomes: {outcomes['correct']} correct, "
        f"{outcomes['typed-failure']} typed failures, "
        f"{outcomes['truncated']} truncated prefixes, "
        f"{len(failures)} chaos failures"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    raise SystemExit(run(args.rounds, args.seed))


if __name__ == "__main__":
    main()
