#!/usr/bin/env python
"""Chaos check: queries under random injected faults, no silent lies.

Runs a fixed workload of example queries against a ring index while a
seeded mix of faults (latency, dropped probability, hard errors) is
injected into the succinct hot paths.  Each run must end in exactly one
of the allowed outcomes:

- **correct** — results identical to the fault-free reference;
- **typed failure** — ``QueryTimeout`` / ``QueryCancelled`` /
  ``QueryExecutionError`` / ``IndexIntegrityError``;
- **truncated** — with ``partial=True``, a flagged prefix of the
  reference (never rows outside it).

Anything else — a wrong answer, an extra row, an unexpected exception
type — is a chaos failure and the script exits non-zero.

Two **durability drills** then attack the crash-safe dynamic ring
(:mod:`repro.reliability.wal`):

- **crash-at-site** — arm ``wal.append`` / ``wal.fsync`` /
  ``checkpoint.write`` / ``dynamic.compact`` mid-workload, copy the
  directory as a crash image, recover it, and assert the recovered
  state is *exactly* the acknowledged state before or after the faulted
  operation (never a third, partial state), with the LTJ answer
  matching an independent component scan;
- **kill-at-offset** — truncate the WAL at random byte offsets and
  assert recovery lands on the exact acknowledged prefix (or fails
  loudly with a typed error when the header itself is gone).

A **parallel drill** then attacks the shared-memory worker pool
(:mod:`repro.parallel`):

- **killed worker** — SIGKILL a worker right after its slices are
  dispatched; the driver must rescue the orphaned slices by re-running
  them serially and still return the *exact* ordered serial answer
  (``serial_rescues``/``respawns`` observable in the pool stats);
- **fault sites** — ``parallel.spawn`` failing at construction must
  degrade the index to serial execution (correct answers, no pool);
  ``parallel.slice_merge`` failing mid-query must surface as a typed
  ``QueryExecutionError``, never a silent partial answer.

A **planning drill** attacks the adaptive variable re-ranking
(:mod:`repro.core.ltj`): armed ``plan.rerank`` faults against an
``adaptive``-policy index must degrade the rest of the query to the
static §4.3 order (counted as ``rerank_fallbacks``) with byte-identical
answers — a broken estimator may cost plan quality, never correctness.

A **cache drill** finally attacks the serving cache
(:mod:`repro.cache`): armed ``cache.lookup``/``cache.store`` faults,
in-place entry corruption, and random entry drops must all degrade to
normal evaluation — answers stay exactly right, only the hit-rate may
suffer.

A **process drill** attacks the process-isolated serving tier
(:mod:`repro.serving.process` / :mod:`repro.serving.replica`): genuine
``kill -9`` of a live primary shard *process* mid-query must — with two
replicas — fail over transparently to a complete, byte-identical answer
(``ShardReport.failovers`` names the shard); with one replica the same
kill degrades to the flagged-partial contract; SIGTERM must drain
in-flight queries, checkpoint, and exit 0; and the ``proc.spawn`` /
``proc.heartbeat`` / ``replica.failover`` fault sites must each degrade
to counted failures, never wrong answers.

An **out-of-core drill** attacks the external-memory builder and the
memmapped pack reader (:mod:`repro.graph.bulkload` /
:mod:`repro.core.frozen`): crashes armed at ``build.spill`` /
``build.merge`` must surface as typed ``BulkBuildError`` with *no*
partial pack on disk and a byte-identical pack on unfaulted retry; a
failing ``mmap.open`` must be a typed ``IndexIntegrityError`` refusal,
never a half-mapped ring.

Run it as::

    PYTHONPATH=src python scripts/chaos_check.py [--rounds 40] [--seed 0]
    PYTHONPATH=src python scripts/chaos_check.py --json chaos.json \
        --drills process-shards

``--json`` writes a machine-readable summary (per-drill pass/fail,
seeds, fault sites, failure messages); the exit code is nonzero when
any selected drill fails.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.core import (
    QueryCancelled,
    QueryExecutionError,
    QueryTimeout,
    RingIndex,
)
from repro.parallel import ParallelRingIndex
from repro.graph import BasicGraphPattern, TriplePattern, Var
from repro.graph.dataset import Graph
from repro.graph.generators import random_graph
from repro.reliability.faults import Fault, InjectedFault, available_sites, inject_faults
from repro.reliability.integrity import IndexIntegrityError
from repro.reliability.wal import HEADER_SIZE, WAL_FILE, DurableDynamicRing

X, Y, Z = Var("x"), Var("y"), Var("z")

WORKLOAD = [
    ("single", BasicGraphPattern([TriplePattern(X, 0, Y)])),
    (
        "two-hop",
        BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(Y, 0, Z)]),
    ),
    (
        "triangle",
        BasicGraphPattern(
            [
                TriplePattern(X, 0, Y),
                TriplePattern(Y, 0, Z),
                TriplePattern(Z, 0, X),
            ]
        ),
    ),
    (
        "star",
        BasicGraphPattern([TriplePattern(X, 0, Y), TriplePattern(X, 1, Z)]),
    ),
]

# Sites worth randomly arming; I/O sites are exercised separately by the
# integrity tests, and latency there would not be seen by a query.
QUERY_SITES = [
    "wavelet.rank",
    "wavelet.select",
    "wavelet.range_next_value",
    "wavelet.access",
    "bitvector.access",
    "bitvector.rank",
    "bitvector.select",
    # Batch kernels: the default engine routes lonely-variable ranges
    # and single-iterator sweeps through these, so chaos must arm them
    # too or the fast path would run fault-free.
    "bitvector.rank_many",
    "bitvector.select_many",
    "bitvector.access_many",
    "wavelet.rank_many",
    "wavelet.extract_at",
]

ALLOWED_ERRORS = (
    QueryTimeout,
    QueryCancelled,
    QueryExecutionError,
    IndexIntegrityError,
)


def random_faults(rng: random.Random) -> list[Fault]:
    """A random (but reproducible) fault mix for one round."""
    faults = []
    for site in rng.sample(QUERY_SITES, k=rng.randint(1, 3)):
        kind = rng.choice(["latency", "error", "flaky-error"])
        if kind == "latency":
            faults.append(
                Fault(site, probability=rng.uniform(0.05, 1.0),
                      latency=rng.uniform(0.0001, 0.002))
            )
        elif kind == "error":
            faults.append(Fault(site, probability=1.0, error=InjectedFault))
        else:
            faults.append(
                Fault(site, probability=rng.uniform(0.01, 0.3),
                      error=InjectedFault)
            )
    return faults


def run(rounds: int, seed: int) -> list[str]:
    rng = random.Random(seed)
    graph = random_graph(600, n_nodes=30, n_predicates=2, seed=5)
    index = RingIndex(graph)

    print(f"chaos check: {rounds} rounds over {len(WORKLOAD)} queries, "
          f"seed {seed}, sites: {', '.join(available_sites())}")

    # Fault-free reference answers (and sanity that they are non-empty).
    reference = {
        name: {frozenset(mu.items()) for mu in index.evaluate(bgp)}
        for name, bgp in WORKLOAD
    }
    assert all(reference.values()), "workload queries must have solutions"

    outcomes = {"correct": 0, "typed-failure": 0, "truncated": 0}
    failures: list[str] = []

    for round_no in range(rounds):
        name, bgp = WORKLOAD[round_no % len(WORKLOAD)]
        faults = random_faults(rng)
        partial = rng.random() < 0.5
        timeout = rng.choice([None, 0.02, 0.1])
        label = (
            f"round {round_no:3d} {name:8s} "
            f"[{', '.join(f.site for f in faults)}] "
            f"timeout={timeout} partial={partial}"
        )
        try:
            with inject_faults(*faults, seed=rng.randrange(2**31)):
                result = index.evaluate(bgp, timeout=timeout, partial=partial)
        except ALLOWED_ERRORS as exc:
            outcomes["typed-failure"] += 1
            print(f"  {label}: {type(exc).__name__}")
            continue
        except Exception as exc:  # noqa: BLE001 - the whole point
            failures.append(f"{label}: unexpected {type(exc).__name__}: {exc}")
            print(f"  {label}: UNEXPECTED {type(exc).__name__}")
            continue

        rows = {frozenset(mu.items()) for mu in result}
        if not rows <= reference[name]:
            bogus = len(rows - reference[name])
            failures.append(f"{label}: {bogus} row(s) not in the reference")
            print(f"  {label}: WRONG ANSWER ({bogus} bogus rows)")
        elif getattr(result, "truncated", False):
            outcomes["truncated"] += 1
            print(f"  {label}: truncated prefix ({len(rows)} rows)")
        elif rows == reference[name]:
            outcomes["correct"] += 1
            print(f"  {label}: correct ({len(rows)} rows)")
        else:
            # Complete (unflagged) but missing rows: a silent lie.
            failures.append(
                f"{label}: result not flagged truncated but misses "
                f"{len(reference[name]) - len(rows)} row(s)"
            )
            print(f"  {label}: SILENTLY INCOMPLETE")

    print(
        f"\noutcomes: {outcomes['correct']} correct, "
        f"{outcomes['typed-failure']} typed failures, "
        f"{outcomes['truncated']} truncated prefixes, "
        f"{len(failures)} chaos failures"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return failures


# -- durability drills (crash-safe dynamic ring) ------------------------------

#: Fault sites in the WAL/checkpoint/compaction protocol; each is killed
#: mid-operation and the crash image must recover to before-or-after.
DYNAMIC_SITES = ["wal.append", "wal.fsync", "checkpoint.write", "dynamic.compact"]

_N_NODES, _N_PREDICATES = 40, 3


def _fresh_store(directory: str) -> DurableDynamicRing:
    universe = Graph(
        np.empty((0, 3), dtype=np.int64),
        n_nodes=_N_NODES,
        n_predicates=_N_PREDICATES,
    )
    return DurableDynamicRing.create(directory, universe, buffer_threshold=16)


def _random_op(rng: random.Random, acked: set) -> tuple:
    if acked and rng.random() < 0.3:
        return ("delete", rng.choice(sorted(acked)))
    return (
        "insert",
        (
            rng.randrange(_N_NODES),
            rng.randrange(_N_PREDICATES),
            rng.randrange(_N_NODES),
        ),
    )


def _next_state(acked: set, op: tuple) -> set:
    verb, triple = op
    state = set(acked)
    (state.add if verb == "insert" else state.discard)(triple)
    return state


def _crash_image(workdir: str, dest: str) -> str:
    """What a crash would leave on disk: copy, ignoring in-memory state."""
    shutil.copytree(workdir, dest)
    return dest


def _recover_and_scan(directory: str) -> set:
    """Recover a crash image; cross-check LTJ against a component scan.

    Returns the recovered live-triple set.  Raises ``AssertionError``
    if the LTJ engine's full-scan answer disagrees with the snapshot's
    independent component walk — the silent-partial-state detector.
    """
    store, _report = DurableDynamicRing.recover(directory)
    try:
        live = set(store.index.snapshot().live_triples())
        pv = Var("p")
        rows = store.evaluate(BasicGraphPattern([TriplePattern(X, pv, Y)]))
        ltj = {(mu[X], mu[pv], mu[Y]) for mu in rows}
        assert ltj == live, (
            f"LTJ scan ({len(ltj)} rows) disagrees with component scan "
            f"({len(live)} rows) after recovery"
        )
        return live
    finally:
        store.close()


def drill_crash_sites(rounds: int, seed: int) -> list[str]:
    """Kill the durability protocol at each site; recovery must land on
    the acknowledged state just before or just after the faulted op."""
    rng = random.Random(seed)
    failures: list[str] = []
    print(f"\ndurability drill A: crash at {', '.join(DYNAMIC_SITES)}")
    for round_no in range(rounds):
        site = DYNAMIC_SITES[round_no % len(DYNAMIC_SITES)]
        base = tempfile.mkdtemp(prefix="chaos-dyn-")
        workdir = os.path.join(base, "store")
        label = f"  drill {round_no:3d} {site:18s}"
        try:
            store = _fresh_store(workdir)
            acked: set = set()
            for _ in range(rng.randint(5, 40)):
                op = _random_op(rng, acked)
                getattr(store, op[0])(*op[1])
                acked = _next_state(acked, op)
            if rng.random() < 0.5:
                store.checkpoint()

            before = set(acked)
            after = set(acked)  # site-only faults leave the state alone
            op = _random_op(rng, acked) if site.startswith("wal.") else None
            fault = Fault(site, probability=1.0, error=InjectedFault,
                          max_fires=1)
            fired = False
            try:
                with inject_faults(fault, seed=rng.randrange(2**31)):
                    if op is not None:
                        getattr(store, op[0])(*op[1])
                    elif site == "checkpoint.write":
                        store.checkpoint()
                    else:  # dynamic.compact
                        store.index.compact(full=True)
            except InjectedFault:
                fired = True
                if op is not None:
                    # The op was cut down mid-protocol: the crash image
                    # may or may not hold its (unacknowledged) record.
                    after = _next_state(acked, op)
            if not fired:
                failures.append(f"{label}: fault never fired")
                print(f"{label}: FAULT DID NOT FIRE")
                continue

            crash = _crash_image(workdir, os.path.join(base, "crash"))
            recovered = _recover_and_scan(crash)
            if recovered == before or recovered == after:
                print(f"{label}: recovered cleanly "
                      f"({len(recovered)} triples)")
            else:
                failures.append(
                    f"{label}: recovered {len(recovered)} triples, "
                    f"expected before ({len(before)}) or after "
                    f"({len(after)}) the faulted op — partial state"
                )
                print(f"{label}: PARTIAL STATE AFTER RECOVERY")
            store.close()
        except AssertionError as exc:
            failures.append(f"{label}: {exc}")
            print(f"{label}: {exc}")
        finally:
            shutil.rmtree(base, ignore_errors=True)
    return failures


def drill_wal_truncation(points: int, seed: int) -> list[str]:
    """Kill the process at arbitrary WAL byte offsets (simulated by
    truncation).  Recovery must land on the exact acknowledged prefix —
    or fail loudly when even the header is gone."""
    rng = random.Random(seed)
    failures: list[str] = []
    base = tempfile.mkdtemp(prefix="chaos-wal-")
    workdir = os.path.join(base, "store")
    try:
        store = _fresh_store(workdir)
        acked: set = set()
        states: list[tuple[int, set]] = [(HEADER_SIZE, set())]
        for _ in range(30):
            op = _random_op(rng, acked)
            getattr(store, op[0])(*op[1])
            acked = _next_state(acked, op)
            states.append((store.wal_bytes, set(acked)))
        store.close()

        wal_path = os.path.join(workdir, WAL_FILE)
        total = os.path.getsize(wal_path)
        # Always include headerless kills; they must fail loudly.
        offsets = sorted(
            set(rng.sample(range(total), k=min(points, total)))
            | {0, HEADER_SIZE - 1}
        )
        print(f"\ndurability drill B: kill at {len(offsets)} random WAL "
              f"offsets of {total} bytes ({len(states) - 1} ops)")
        for off in offsets:
            crash = _crash_image(workdir, os.path.join(base, f"crash-{off}"))
            with open(os.path.join(crash, WAL_FILE), "r+b") as f:
                f.truncate(off)
            label = f"  offset {off:5d}"
            if off < HEADER_SIZE:
                try:
                    DurableDynamicRing.recover(crash)
                    failures.append(
                        f"{label}: headerless WAL recovered silently"
                    )
                    print(f"{label}: SILENT RECOVERY WITHOUT HEADER")
                except IndexIntegrityError as exc:
                    print(f"{label}: typed failure ({type(exc).__name__})")
                continue
            expected: set = set()
            for end, state in states:
                if end <= off:
                    expected = state
                else:
                    break
            try:
                recovered = _recover_and_scan(crash)
            except AssertionError as exc:
                failures.append(f"{label}: {exc}")
                print(f"{label}: {exc}")
                continue
            if recovered == expected:
                print(f"{label}: exact acknowledged prefix "
                      f"({len(recovered)} triples)")
            else:
                failures.append(
                    f"{label}: recovered {len(recovered)} triples, the "
                    f"acknowledged prefix holds {len(expected)}"
                )
                print(f"{label}: NOT THE ACKNOWLEDGED PREFIX")
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return failures


# -- parallel drills (shared-memory worker pool) ------------------------------

#: The WORKLOAD queries that actually fan out (≥2 shared variables);
#: ``single`` is all-lonely and legitimately bypasses the pool.
PARALLEL_WORKLOAD = [name for name, _ in WORKLOAD if name != "single"]


def drill_parallel_kill(rounds: int, seed: int) -> list[str]:
    """SIGKILL a worker right after dispatch, every round.

    The driver must notice the dead worker, re-run its orphaned slices
    serially, and return the exact ordered serial answer — a kill may
    cost latency, never correctness.  Across the drill the pool stats
    must show the rescue path actually fired (``serial_rescues`` > 0)
    and the pool healed itself (``respawns`` > 0).
    """
    rng = random.Random(seed)
    failures: list[str] = []
    graph = random_graph(600, n_nodes=30, n_predicates=2, seed=5)
    serial = RingIndex(graph)
    reference = {
        name: [dict(mu) for mu in serial.evaluate(bgp)]
        for name, bgp in WORKLOAD
        if name in PARALLEL_WORKLOAD
    }
    index = ParallelRingIndex(graph, workers=2, num_slices=4)
    try:
        if index.pool is None:
            return ["parallel drill: pool failed to spawn"]
        print(f"\nparallel drill: kill-a-worker, {rounds} rounds over "
              f"{', '.join(PARALLEL_WORKLOAD)}")
        for round_no in range(rounds):
            name = PARALLEL_WORKLOAD[round_no % len(PARALLEL_WORKLOAD)]
            bgp = dict(WORKLOAD)[name]
            victim = rng.randrange(index.pool.workers)
            index.pool._kill_after_dispatch = victim
            label = f"  kill {round_no:3d} {name:8s} worker={victim}"
            try:
                rows = [dict(mu) for mu in index.evaluate(bgp)]
            except ALLOWED_ERRORS as exc:
                # A typed failure is honest, but with no budget set the
                # rescue path should always complete instead.
                failures.append(f"{label}: unexpected {type(exc).__name__}")
                print(f"{label}: UNEXPECTED {type(exc).__name__}")
                continue
            if rows != reference[name]:
                failures.append(
                    f"{label}: {len(rows)} rows != serial "
                    f"{len(reference[name])} (or out of order)"
                )
                print(f"{label}: WRONG/REORDERED ANSWER")
            else:
                stats = index.pool_stats()
                print(f"{label}: exact ordered answer ({len(rows)} rows), "
                      f"rescues={stats['serial_rescues']} "
                      f"respawns={stats['respawns']}")
        stats = index.pool_stats()
        if stats.get("serial_rescues", 0) < 1:
            failures.append(
                "parallel drill: kill hook never exercised the serial "
                "rescue path (serial_rescues == 0)"
            )
        if stats.get("respawns", 0) < 1:
            failures.append(
                "parallel drill: no worker was ever respawned "
                "(respawns == 0)"
            )
    finally:
        index.close()
    return failures


def drill_parallel_faults(seed: int) -> list[str]:
    """Arm the ``parallel.*`` fault sites; degradation must be typed.

    ``parallel.spawn`` at construction → a degraded (serial) index that
    still answers correctly; ``parallel.slice_merge`` mid-query → a
    typed ``QueryExecutionError``, never rows from a half-merged fan-out.
    """
    failures: list[str] = []
    graph = random_graph(600, n_nodes=30, n_predicates=2, seed=5)
    serial = RingIndex(graph)
    name = PARALLEL_WORKLOAD[0]
    bgp = dict(WORKLOAD)[name]
    reference = [dict(mu) for mu in serial.evaluate(bgp)]
    print("\nparallel drill: fault sites parallel.spawn, parallel.slice_merge")

    fault = Fault("parallel.spawn", probability=1.0, error=InjectedFault)
    with inject_faults(fault, seed=seed):
        index = ParallelRingIndex(graph, workers=2)
    try:
        if index.pool is not None:
            failures.append("parallel.spawn fault: pool spawned anyway")
        elif [dict(mu) for mu in index.evaluate(bgp)] != reference:
            failures.append(
                "parallel.spawn fault: degraded index answered wrongly"
            )
        else:
            print(f"  spawn     : degraded to serial, exact answer "
                  f"({len(reference)} rows), fired={fault.fired}")
    finally:
        index.close()

    index = ParallelRingIndex(graph, workers=2, num_slices=4)
    try:
        fault = Fault("parallel.slice_merge", probability=1.0,
                      error=InjectedFault)
        try:
            with inject_faults(fault, seed=seed):
                index.evaluate(bgp)
        except QueryExecutionError:
            print(f"  slice_merge: typed QueryExecutionError, "
                  f"fired={fault.fired}")
        except Exception as exc:  # noqa: BLE001 - the whole point
            failures.append(
                f"parallel.slice_merge fault: unexpected "
                f"{type(exc).__name__}: {exc}"
            )
        else:
            failures.append(
                "parallel.slice_merge fault: query returned rows through "
                "a failing merge"
            )
    finally:
        index.close()
    return failures


# -- cache drill (serving-cache layer) ----------------------------------------


def drill_cache(rounds: int, seed: int) -> list[str]:
    """Attack the serving cache; it must degrade, never lie.

    Each round repeats the workload through a :class:`CachedQuerySystem`
    while one of three attacks runs:

    - ``cache.lookup`` / ``cache.store`` armed with errors or latency —
      every query must fall through to a normal evaluation;
    - direct entry corruption (stored rows mutated in place) — the
      fingerprint must drop the entry on the next touch;
    - random entry drops mid-workload — only hit-rate may suffer.

    Every answer is compared against the fault-free reference; any
    mismatch is a chaos failure.
    """
    from repro.cache import CachedQuerySystem

    rng = random.Random(seed)
    failures: list[str] = []
    graph = random_graph(600, n_nodes=30, n_predicates=2, seed=5)
    reference = {
        name: [dict(mu) for mu in RingIndex(graph).evaluate(bgp)]
        for name, bgp in WORKLOAD
    }
    print(f"\ncache drill: {rounds} rounds — faulted lookup/store, "
          f"corrupted entries, dropped entries")
    for round_no in range(rounds):
        attack = ("faults", "corrupt", "drop")[round_no % 3]
        system = CachedQuerySystem(RingIndex(graph))
        label = f"  cache {round_no:3d} {attack:8s}"
        try:
            if attack == "faults":
                site = rng.choice(["cache.lookup", "cache.store"])
                kind = rng.choice(["error", "flaky-error", "latency"])
                if kind == "latency":
                    fault = Fault(site, probability=1.0,
                                  latency=rng.uniform(0.0001, 0.001))
                else:
                    fault = Fault(
                        site,
                        probability=1.0 if kind == "error"
                        else rng.uniform(0.1, 0.9),
                        error=InjectedFault,
                    )
                with inject_faults(fault, seed=rng.randrange(2**31)):
                    for _ in range(2):  # second pass would hit if stored
                        for name, bgp in WORKLOAD:
                            rows = [dict(mu) for mu in system.evaluate(bgp)]
                            assert rows == reference[name], name
                detail = f"{site} {kind}, fired={fault.fired}"
            else:
                for name, bgp in WORKLOAD:  # populate
                    system.evaluate(bgp)
                entries = system.result_cache._entries
                victims = rng.sample(
                    sorted(entries, key=repr), k=max(1, len(entries) // 2)
                )
                for key in victims:
                    if attack == "corrupt":
                        entry = entries[key]
                        entry.rows = entry.rows[:-1] if entry.rows else ((),)
                    else:
                        system.result_cache.discard(key)
                for name, bgp in WORKLOAD:  # repeat against damage
                    rows = [dict(mu) for mu in system.evaluate(bgp)]
                    assert rows == reference[name], name
                stats = system.result_cache.stats()
                detail = (
                    f"{len(victims)} entries attacked, "
                    f"corrupt_dropped={stats['corrupt_dropped']}"
                )
                if attack == "corrupt" and stats["corrupt_dropped"] < 1:
                    failures.append(
                        f"{label}: fingerprint never caught the corruption"
                    )
                    print(f"{label}: CORRUPTION NOT DETECTED")
                    continue
            print(f"{label}: exact answers ({detail})")
        except AssertionError as exc:
            failures.append(f"{label}: wrong answer on {exc}")
            print(f"{label}: WRONG ANSWER on {exc}")
        except ALLOWED_ERRORS as exc:
            failures.append(
                f"{label}: cache faults must degrade, not raise "
                f"({type(exc).__name__})"
            )
            print(f"{label}: UNEXPECTED {type(exc).__name__}")
    return failures


# -- planning drill (adaptive variable re-ranking) ----------------------------


def drill_plan_rerank(rounds: int, seed: int) -> list[str]:
    """Break the adaptive re-ranking; queries must degrade, never lie.

    Arms the ``plan.rerank`` site (the per-depth
    :func:`repro.core.ltj.rank_candidates` call) with hard and flaky
    errors against an ``adaptive``-policy index on the skewed two-wing
    workload.  Every answer must stay byte-identical to the static
    reference — a broken estimator may only cost plan quality — and
    when a fault fires mid-query the engine must record the counted
    fallback (``rerank_fallbacks``) and finish the query in static
    order.
    """
    from repro.graph.generators import skewed_graph

    rng = random.Random(seed)
    failures: list[str] = []
    graph = skewed_graph(n_hubs=16, fan=8, noise=100, seed=5)
    A, B = Var("a"), Var("b")
    bgp = BasicGraphPattern(
        [TriplePattern(X, 0, A), TriplePattern(X, 1, B), TriplePattern(A, 2, B)]
    )
    def canon(result):
        # Binding order differs per policy, so compare canonical rows.
        return sorted(
            tuple(sorted((v.name, c) for v, c in mu.items())) for mu in result
        )

    reference = canon(RingIndex(graph, policy="static").evaluate(bgp))
    index = RingIndex(graph, policy="adaptive")
    print(f"\nplanning drill: plan.rerank faults, {rounds} rounds "
          f"(adaptive policy, two-wing query)")
    fallbacks_seen = 0
    for round_no in range(rounds):
        hard = round_no % 2 == 0
        fault = Fault(
            "plan.rerank",
            probability=1.0 if hard else rng.uniform(0.2, 0.8),
            error=InjectedFault,
        )
        label = f"  rerank {round_no:3d} {'hard ' if hard else 'flaky'}"
        stats: dict = {}
        try:
            with inject_faults(fault, seed=rng.randrange(2**31)):
                rows = canon(index.evaluate(bgp, stats=stats))
        except Exception as exc:  # noqa: BLE001 - degradation is the contract
            failures.append(
                f"{label}: rerank faults must degrade, not raise "
                f"({type(exc).__name__})"
            )
            print(f"{label}: UNEXPECTED {type(exc).__name__}")
            continue
        if rows != reference:
            failures.append(f"{label}: answer diverged from static reference")
            print(f"{label}: WRONG ANSWER")
            continue
        if fault.fired and not stats.get("rerank_fallbacks"):
            failures.append(
                f"{label}: fault fired {fault.fired}x but no fallback counted"
            )
            print(f"{label}: FALLBACK NOT COUNTED")
            continue
        fallbacks_seen += stats.get("rerank_fallbacks", 0)
        print(f"{label}: exact answer ({len(rows)} rows), "
              f"fired={fault.fired}, fallbacks={stats.get('rerank_fallbacks', 0)}, "
              f"reranks={stats.get('reranks', 0)}")
    if fallbacks_seen < 1:
        failures.append(
            "planning drill: no round ever exercised the static fallback"
        )
    return failures


# -- shard drill (fault-tolerant serving tier) --------------------------------


def drill_shards(rounds: int, seed: int) -> list[str]:
    """Kill a random shard mid-query; the coordinator must degrade, never
    hang or lie.

    Each round scatters a workload query over 4 shards while a timer
    kills a random shard at a random instant (a ``shard.gather`` latency
    fault keeps the query in flight long enough for the kill to land
    mid-gather).  The result must be either the exact reference or a
    *flagged* partial: rows a subset of the reference, ``truncated``
    set, and the dead shard named in ``result.shards.failed``.  The
    drill then asserts the full recovery story: the degraded answer is
    deterministic across reruns, a supervisor sweep restarts the shard
    (the breaker walks open → half-open → closed), and an unfaulted
    rerun is byte-identical to the reference.
    """
    import threading

    from repro.serving import (
        CircuitBreaker,
        RetryPolicy,
        ShardCoordinator,
        ShardedRingIndex,
        ShardSupervisor,
    )

    rng = random.Random(seed)
    failures: list[str] = []
    graph = random_graph(600, n_nodes=30, n_predicates=2, seed=5)
    serial = RingIndex(graph)
    reference = {
        name: {frozenset(mu.items()) for mu in serial.evaluate(bgp)}
        for name, bgp in WORKLOAD
    }
    print(f"\nshard drill: kill-a-shard mid-query, {rounds} rounds "
          f"over {len(WORKLOAD)} queries, 4 shards")
    for round_no in range(rounds):
        name, bgp = WORKLOAD[round_no % len(WORKLOAD)]
        ref = reference[name]
        victim = rng.randrange(4)
        label = f"  shard {round_no:3d} {name:8s} victim={victim}"
        shards = ShardedRingIndex.from_graph(graph, 4)
        coord = ShardCoordinator(
            shards,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.005, seed=round_no
            ),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=0.05
            ),
            shard_timeout=1.0,
        )
        try:
            timer = threading.Timer(
                rng.uniform(0.0, 0.01), shards.kill_shard, args=(victim,)
            )
            fault = Fault("shard.gather", probability=1.0, latency=0.004)
            timer.start()
            try:
                with inject_faults(fault, seed=rng.randrange(2**31)):
                    result = coord.evaluate(bgp, partial=True, timeout=10.0)
            finally:
                timer.join()
            rows = {frozenset(mu.items()) for mu in result}
            report = result.shards
            if report.complete:
                if rows != ref:
                    failures.append(f"{label}: complete but wrong answer")
                    print(f"{label}: WRONG COMPLETE ANSWER")
                    continue
                detail = "kill landed late; complete answer"
            else:
                if report.failed != (victim,):
                    failures.append(
                        f"{label}: failed shards {report.failed} != "
                        f"({victim},)"
                    )
                    print(f"{label}: WRONG FAILURE TAG {report.failed}")
                    continue
                if not rows <= ref:
                    failures.append(
                        f"{label}: {len(rows - ref)} row(s) outside the "
                        f"reference — a lie, not a degradation"
                    )
                    print(f"{label}: BOGUS ROWS IN PARTIAL")
                    continue
                if not result.truncated:
                    failures.append(f"{label}: partial result not flagged")
                    print(f"{label}: UNFLAGGED PARTIAL")
                    continue
                again = coord.evaluate(bgp, partial=True, timeout=10.0)
                if list(result) != list(again) or (
                    again.shards.failed != report.failed
                ):
                    failures.append(f"{label}: partial result not deterministic")
                    print(f"{label}: NONDETERMINISTIC PARTIAL")
                    continue
                detail = (
                    f"flagged partial {len(rows)}/{len(ref)} rows, "
                    f"deterministic"
                )
            # Recovery: supervisor restart → breaker half-open probe →
            # byte-identical complete rerun.
            supervisor = ShardSupervisor(shards, interval=0.01)
            supervisor.sweep()
            if not shards.endpoints[victim].alive:
                failures.append(f"{label}: supervisor failed to restart")
                print(f"{label}: RESTART FAILED")
                continue
            breaker = coord.breakers[victim]
            if breaker.state == "open":
                time.sleep(0.06)  # past reset_timeout: open -> half-open
                if breaker.state != "half-open":
                    failures.append(
                        f"{label}: breaker stuck {breaker.state} after reset "
                        f"window"
                    )
                    print(f"{label}: BREAKER STUCK")
                    continue
            final = coord.evaluate(bgp, timeout=10.0)
            final_rows = {frozenset(mu.items()) for mu in final}
            if final_rows != ref or not final.shards.complete:
                failures.append(
                    f"{label}: post-restart rerun not byte-identical "
                    f"({len(final_rows)} vs {len(ref)} rows)"
                )
                print(f"{label}: POST-RESTART MISMATCH")
                continue
            print(f"{label}: {detail}; recovered to exact answer "
                  f"(breaker {breaker.state})")
        except ALLOWED_ERRORS as exc:
            failures.append(
                f"{label}: partial=True must degrade, not raise "
                f"({type(exc).__name__})"
            )
            print(f"{label}: UNEXPECTED {type(exc).__name__}")
        finally:
            shards.shutdown()
    failures += _drill_shard_fault_sites(seed + 7)
    return failures


def _drill_shard_fault_sites(seed: int) -> list[str]:
    """Arm ``shard.dispatch`` / ``shard.restart`` directly.

    Flaky dispatches must yield only exact or flagged-subset answers;
    a failing restart must be *counted* by the supervisor, never crash
    it, and recovery must complete once the fault clears.
    """
    from repro.serving import (
        CircuitBreaker,
        RetryPolicy,
        ShardCoordinator,
        ShardedRingIndex,
        ShardSupervisor,
    )

    failures: list[str] = []
    graph = random_graph(600, n_nodes=30, n_predicates=2, seed=5)
    serial = RingIndex(graph)
    name, bgp = WORKLOAD[1]
    ref = {frozenset(mu.items()) for mu in serial.evaluate(bgp)}
    print("\nshard drill: fault sites shard.dispatch, shard.restart")

    shards = ShardedRingIndex.from_graph(graph, 4)
    coord = ShardCoordinator(
        shards,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.002, seed=seed),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=3, reset_timeout=0.02
        ),
    )
    try:
        fault = Fault("shard.dispatch", probability=0.4, error=InjectedFault)
        with inject_faults(fault, seed=seed):
            for attempt in range(4):
                result = coord.evaluate(bgp, partial=True, timeout=10.0)
                rows = {frozenset(mu.items()) for mu in result}
                if result.shards.complete:
                    if rows != ref:
                        failures.append(
                            "shard.dispatch fault: complete but wrong"
                        )
                        break
                elif not (rows <= ref and result.truncated):
                    failures.append(
                        "shard.dispatch fault: unflagged or bogus partial"
                    )
                    break
            else:
                print(f"  dispatch  : {fault.fired} faults fired, every "
                      f"answer exact or flagged subset")

        # A restart that itself fails must be counted, not raised.
        shards.kill_shard(1)
        supervisor = ShardSupervisor(shards, interval=0.01)
        restart_fault = Fault(
            "shard.restart", probability=1.0, error=InjectedFault
        )
        with inject_faults(restart_fault, seed=seed):
            supervisor.sweep()
        if shards.endpoints[1].alive:
            failures.append("shard.restart fault: shard restarted anyway")
        elif supervisor.stats()["failed_restarts"][1] < 1:
            failures.append("shard.restart fault: failure not counted")
        else:
            supervisor.sweep()  # unfaulted: recovery must now succeed
            if not shards.endpoints[1].alive:
                failures.append("shard.restart: recovery after fault failed")
            else:
                print(f"  restart   : failed restart counted "
                      f"({restart_fault.fired} fired), then recovered")
    finally:
        shards.shutdown()
    return failures


# -- process drill (process-isolated shards + replication) --------------------


def _kill_pid(pid) -> None:
    """Genuine ``kill -9`` of a shard process (ignores already-dead)."""
    import signal as _signal

    try:
        os.kill(pid, _signal.SIGKILL)
    except (OSError, ProcessLookupError):
        pass


def _heal_process_shards(shards, supervisor, timeout: float = 60.0) -> bool:
    """Sweep until every replica of every shard is back up (or timeout)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        supervisor.sweep()
        healthy = all(
            all(r.alive for r in getattr(ep, "replicas", [ep]))
            for ep in shards.endpoints
        )
        if healthy:
            return True
        time.sleep(0.05)
    return False


def drill_process_shards(rounds: int, seed: int) -> list[str]:
    """``kill -9`` a live shard *process* mid-query; the ISSUE-8 contract.

    With ``replicas=2`` the answer must stay complete, byte-identical to
    the single-copy reference, and unflagged — the ``ShardReport`` may
    only record the failover.  With ``replicas=1`` a pre-killed primary
    must degrade to the PR 6 flagged-partial contract, and a supervised
    respawn through WAL recovery must restore the exact answer.  A
    SIGTERM'd shard must finish its in-flight query, checkpoint, and
    exit 0.  Finally the ``proc.spawn`` / ``proc.heartbeat`` /
    ``replica.failover`` fault sites must each degrade to counted
    failures, never wrong answers.
    """
    import threading

    from repro.serving import (
        CircuitBreaker,
        RetryPolicy,
        ShardCoordinator,
        ShardedRingIndex,
        ShardSupervisor,
    )
    from repro.reliability.wal import verify_dynamic_dir

    rng = random.Random(seed)
    failures: list[str] = []
    graph = random_graph(400, n_nodes=30, n_predicates=2, seed=5)

    # Single-copy reference: the same coordinator pipeline over plain
    # in-memory shards — byte-identity means *list* equality (canonical
    # order included), not just set equality.
    ref_shards = ShardedRingIndex.from_graph(graph, 4)
    ref_coord = ShardCoordinator(ref_shards)
    try:
        ref_rows = {
            name: list(ref_coord.evaluate(bgp, timeout=60.0))
            for name, bgp in WORKLOAD
        }
    finally:
        ref_shards.shutdown()

    base = tempfile.mkdtemp(prefix="chaos-proc-")
    print(f"\nprocess drill: kill -9 a primary shard process mid-query, "
          f"{rounds} rounds, 4 shards x2 replicas")

    # -- part 1: replicas=2 — kill -9 must stay complete + byte-identical
    shards = ShardedRingIndex.create_durable(
        os.path.join(base, "r2"), graph, 4,
        replicas=2, processes=True,
        broker_options={"workers": 1}, buffer_threshold=256,
    )
    coord = ShardCoordinator(
        shards,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.005, seed=seed),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=2, reset_timeout=0.05
        ),
        shard_timeout=20.0,
    )
    supervisor = ShardSupervisor(shards, interval=0.01)
    try:
        for round_no in range(rounds):
            name, bgp = WORKLOAD[round_no % len(WORKLOAD)]
            victim = rng.randrange(4)
            ep = shards.endpoints[victim]
            pid = ep.replicas[ep.primary].pid
            label = f"  proc {round_no:3d} {name:8s} victim={victim} pid={pid}"
            timer = threading.Timer(
                rng.uniform(0.0, 0.01), _kill_pid, args=(pid,)
            )
            # Latency on the gather seam stretches the query so the kill
            # lands mid-flight rather than before/after it.
            fault = Fault("shard.gather", probability=1.0, latency=0.004)
            timer.start()
            try:
                with inject_faults(fault, seed=rng.randrange(2**31)):
                    result = coord.evaluate(bgp, partial=True, timeout=60.0)
            finally:
                timer.join()
            report = result.shards
            if not report.complete:
                failures.append(
                    f"{label}: replicated kill must stay complete, "
                    f"failed={report.failed}"
                )
                print(f"{label}: NOT COMPLETE {report.failed}")
            elif list(result) != ref_rows[name]:
                failures.append(f"{label}: answer not byte-identical")
                print(f"{label}: NOT BYTE-IDENTICAL")
            elif result.truncated:
                failures.append(f"{label}: complete answer flagged truncated")
                print(f"{label}: SPURIOUS TRUNCATED FLAG")
            else:
                print(f"{label}: complete byte-identical answer "
                      f"(failovers={report.failovers})")
            if not _heal_process_shards(shards, supervisor):
                failures.append(f"{label}: shards never healed after round")
                print(f"{label}: HEAL TIMEOUT")
                break
        total_failovers = sum(
            int(getattr(ep, "failovers", 0)) for ep in shards.endpoints
        )
        if total_failovers < 1:
            failures.append(
                "process drill: no kill ever landed as a replica failover "
                "(failovers == 0 across all rounds)"
            )
        final = coord.evaluate(WORKLOAD[1][1], timeout=60.0)
        if list(final) != ref_rows["two-hop"] or not final.shards.complete:
            failures.append(
                "process drill: healed cluster rerun not byte-identical"
            )
        else:
            print(f"  healed rerun: complete byte-identical answer, "
                  f"{total_failovers} failover(s) across the drill")
    finally:
        shards.shutdown()

    # -- part 2: replicas=1 — the same kill degrades to flagged-partial
    print("\nprocess drill: replicas=1 degradation + respawn through WAL")
    shards1 = ShardedRingIndex.create_durable(
        os.path.join(base, "r1"), graph, 4,
        replicas=1, processes=True,
        broker_options={"workers": 1}, buffer_threshold=256,
    )
    coord1 = ShardCoordinator(
        shards1,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.005, seed=seed),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=2, reset_timeout=0.05
        ),
        shard_timeout=20.0,
    )
    supervisor1 = ShardSupervisor(shards1, interval=0.01)
    try:
        name, bgp = WORKLOAD[1]
        victim = rng.randrange(4)
        ref_set = {frozenset(mu.items()) for mu in ref_rows[name]}
        shards1.endpoints[victim].kill()  # genuine SIGKILL + reap
        result = coord1.evaluate(bgp, partial=True, timeout=60.0)
        rows = {frozenset(mu.items()) for mu in result}
        if result.shards.failed != (victim,):
            failures.append(
                f"process drill r1: failed={result.shards.failed} != "
                f"({victim},)"
            )
        elif not (rows <= ref_set and result.truncated):
            failures.append(
                "process drill r1: unflagged or bogus partial after kill"
            )
        else:
            again = coord1.evaluate(bgp, partial=True, timeout=60.0)
            if list(result) != list(again):
                failures.append(
                    "process drill r1: flagged partial not deterministic"
                )
            else:
                print(f"  r1 kill: flagged partial {len(rows)}/{len(ref_set)} "
                      f"rows, failed=({victim},), deterministic")
        if not _heal_process_shards(shards1, supervisor1):
            failures.append("process drill r1: respawn through WAL never healed")
        else:
            healed = coord1.evaluate(bgp, timeout=60.0)
            if list(healed) != ref_rows[name] or not healed.shards.complete:
                failures.append(
                    "process drill r1: post-respawn answer not byte-identical"
                )
            else:
                incarnation = shards1.endpoints[victim].incarnation
                print(f"  r1 respawn: WAL recovery restored the exact answer "
                      f"(incarnation={incarnation})")

        # -- part 3: SIGTERM drain — in-flight finishes, exit 0, valid
        # checkpoint on disk.
        import signal as _signal

        ep = shards1.endpoints[(victim + 1) % 4]
        expect = ep.evaluate(WORKLOAD[0][1], timeout=30.0)
        futures = [ep.submit(WORKLOAD[0][1], timeout=30.0) for _ in range(3)]
        time.sleep(0.3)  # let the child recv the requests before the signal
        os.kill(ep.pid, _signal.SIGTERM)
        try:
            drained = [list(f.result(timeout=30.0)) for f in futures]
        except Exception as exc:
            failures.append(
                f"process drill sigterm: in-flight query lost "
                f"({type(exc).__name__})"
            )
            drained = None
        deadline = time.monotonic() + 30.0
        while ep.exitcode is None and time.monotonic() < deadline:
            time.sleep(0.02)  # wait for the real exit, not just pipe EOF
        if ep.exitcode != 0:
            failures.append(
                f"process drill sigterm: exit code {ep.exitcode}, wanted 0"
            )
        elif drained is not None and any(d != list(expect) for d in drained):
            failures.append(
                "process drill sigterm: drained answers differ from live ones"
            )
        else:
            checks = verify_dynamic_dir(ep.directory)
            ep.restart()
            if not ep.health_check():
                failures.append(
                    "process drill sigterm: restart after drain unhealthy"
                )
            else:
                print(f"  sigterm: drained {len(futures)} in-flight queries, "
                      f"exit 0, checkpoint valid "
                      f"({checks['n_triples']} triples), restarted healthy")
    finally:
        shards1.shutdown()
        shutil.rmtree(base, ignore_errors=True)

    failures += _drill_process_fault_sites(seed + 11)
    return failures


def _drill_process_fault_sites(seed: int) -> list[str]:
    """Arm ``proc.spawn`` / ``proc.heartbeat`` / ``replica.failover``.

    A failing spawn must surface as a counted failed restart (typed,
    never a crash); a failing heartbeat must mark the endpoint unhealthy
    and recover when the fault clears; a failing promotion must degrade
    the query to a flagged partial — never a wrong answer.
    """
    from repro.serving import (
        CircuitBreaker,
        RetryPolicy,
        ShardCoordinator,
        ShardedRingIndex,
        ShardSupervisor,
    )

    failures: list[str] = []
    graph = random_graph(400, n_nodes=30, n_predicates=2, seed=5)
    base = tempfile.mkdtemp(prefix="chaos-procsite-")
    print("\nprocess drill: fault sites proc.spawn, proc.heartbeat, "
          "replica.failover")
    try:
        shards = ShardedRingIndex.create_durable(
            os.path.join(base, "store"), graph, 2,
            replicas=1, processes=True,
            broker_options={"workers": 1}, buffer_threshold=256,
        )
        supervisor = ShardSupervisor(shards, interval=0.01)
        try:
            # proc.heartbeat: armed probe fails -> unhealthy; clears after.
            fault = Fault("proc.heartbeat", probability=1.0, error=InjectedFault)
            with inject_faults(fault, seed=seed):
                if shards.endpoints[0].health_check():
                    failures.append(
                        "proc.heartbeat fault: probe succeeded anyway"
                    )
            if not shards.endpoints[0].health_check():
                failures.append(
                    "proc.heartbeat: endpoint unhealthy after fault cleared"
                )
            elif shards.endpoints[0].stats()["transport"]["heartbeat_failures"] < 1:
                failures.append("proc.heartbeat fault: failure not counted")
            else:
                print(f"  heartbeat : armed probe failed typed "
                      f"({fault.fired} fired), healthy once cleared")

            # proc.spawn: a respawn that fails must be counted, not raised.
            shards.endpoints[0].kill()
            spawn_fault = Fault("proc.spawn", probability=1.0,
                                error=InjectedFault)
            with inject_faults(spawn_fault, seed=seed):
                supervisor.sweep()
            if shards.endpoints[0].alive:
                failures.append("proc.spawn fault: shard respawned anyway")
            elif supervisor.stats()["failed_restarts"][0] < 1:
                failures.append("proc.spawn fault: failure not counted")
            else:
                supervisor.sweep()  # unfaulted: respawn must now succeed
                if not shards.endpoints[0].alive:
                    failures.append("proc.spawn: recovery after fault failed")
                else:
                    print(f"  spawn     : failed respawn counted "
                          f"({spawn_fault.fired} fired), then recovered")
        finally:
            shards.shutdown()

        # replica.failover: promotion failure degrades to flagged partial.
        rep_shards = ShardedRingIndex.from_graph(graph, 2, replicas=2)
        coord = ShardCoordinator(
            rep_shards,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.005, seed=seed),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_timeout=0.05
            ),
            shard_timeout=10.0,
        )
        try:
            name, bgp = WORKLOAD[0]
            reference = list(coord.evaluate(bgp, timeout=30.0))
            victim = 0
            ep = rep_shards.endpoints[victim]
            ep.replicas[ep.primary].kill()
            fo_fault = Fault("replica.failover", probability=1.0,
                             error=InjectedFault)
            with inject_faults(fo_fault, seed=seed):
                result = coord.evaluate(bgp, partial=True, timeout=30.0)
            rows = {frozenset(mu.items()) for mu in result}
            ref_set = {frozenset(mu.items()) for mu in reference}
            if result.shards.complete or not result.truncated:
                failures.append(
                    "replica.failover fault: broken promotion did not "
                    "degrade to a flagged partial"
                )
            elif not rows <= ref_set:
                failures.append(
                    "replica.failover fault: bogus rows in the partial"
                )
            else:
                time.sleep(0.1)  # let the breaker's reset window elapse
                unfaulted = coord.evaluate(bgp, partial=True, timeout=30.0)
                if (
                    list(unfaulted) != reference
                    or not unfaulted.shards.complete
                ):
                    failures.append(
                        "replica.failover: unfaulted failover not "
                        "byte-identical"
                    )
                else:
                    print(f"  failover  : broken promotion degraded to "
                          f"flagged partial ({fo_fault.fired} fired), "
                          f"then failed over exactly")
        finally:
            rep_shards.shutdown()
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return failures


# -- out-of-core drill (streaming builder + memmapped packs) -------------------


def drill_outofcore(rounds: int, seed: int) -> list[str]:
    """Kill the external-memory builder mid-spill / mid-merge; open packs
    through a failing mmap.  The out-of-core contract:

    - a faulted build raises typed :class:`BulkBuildError` and leaves
      **no pack and no sidecar** behind (spills live in a private
      directory that is removed either way);
    - an immediate unfaulted retry to the same path succeeds and its
      pack is *byte-identical* to the never-faulted reference — the
      builder is restartable, not merely crash-safe;
    - a failing ``mmap.open`` surfaces as typed
      :class:`IndexIntegrityError`, never a half-mapped ring.
    """
    from repro.graph.bulkload import BulkBuildError, bulk_build

    rng = random.Random(seed)
    failures: list[str] = []
    graph = random_graph(4000, n_nodes=200, n_predicates=4, seed=5)
    base = tempfile.mkdtemp(prefix="chaos-ooc-")
    sites = ["build.spill", "build.merge"]
    print(f"\nout-of-core drill: {rounds} rounds crashing "
          f"{', '.join(sites)}, then a faulted mmap.open")
    try:
        reference = os.path.join(base, "reference.ring")
        # Small chunk so both the spill and the merge paths genuinely run.
        bulk_build(graph, reference, chunk_triples=512)
        with open(reference, "rb") as fh:
            ref_bytes = fh.read()

        for round_no in range(rounds):
            site = sites[round_no % len(sites)]
            hard = round_no % 4 < 2
            out = os.path.join(base, f"round-{round_no}.ring")
            fault = Fault(
                site,
                probability=1.0 if hard else rng.uniform(0.3, 0.9),
                error=InjectedFault,
            )
            label = f"  ooc {round_no:3d} {site:12s} {'hard ' if hard else 'flaky'}"
            try:
                with inject_faults(fault, seed=rng.randrange(2**31)):
                    bulk_build(graph, out, chunk_triples=512)
            except BulkBuildError:
                if os.path.exists(out) or os.path.exists(out + ".config.json"):
                    failures.append(f"{label}: partial pack left behind")
                    print(f"{label}: PARTIAL PACK ON DISK")
                    continue
            except Exception as exc:  # noqa: BLE001 - the whole point
                failures.append(
                    f"{label}: untyped {type(exc).__name__}: {exc}"
                )
                print(f"{label}: UNTYPED {type(exc).__name__}")
                continue
            else:
                if fault.fired:
                    failures.append(
                        f"{label}: build swallowed {fault.fired} fired fault(s)"
                    )
                    print(f"{label}: FAULT SWALLOWED")
                    continue
                # Flaky fault never fired: the clean build must be exact.
            if not os.path.exists(out):
                bulk_build(graph, out, chunk_triples=512)  # unfaulted retry
            with open(out, "rb") as fh:
                retry_bytes = fh.read()
            if retry_bytes != ref_bytes:
                failures.append(f"{label}: retry pack not byte-identical")
                print(f"{label}: RETRY DIVERGED")
            else:
                print(f"{label}: typed failure, clean dir, retry "
                      f"byte-identical ({fault.fired} fired)")

        # mmap.open: a failing map must be a typed refusal, not a ring.
        fault = Fault("mmap.open", probability=1.0, error=InjectedFault)
        try:
            with inject_faults(fault, seed=seed):
                RingIndex.load(reference, mmap=True)
        except IndexIntegrityError:
            print(f"  mmap.open  : typed IndexIntegrityError "
                  f"({fault.fired} fired)")
        except Exception as exc:  # noqa: BLE001 - the whole point
            failures.append(
                f"mmap.open fault: untyped {type(exc).__name__}: {exc}"
            )
        else:
            failures.append("mmap.open fault: load succeeded anyway")
        # Cleared fault: the same pack must open and answer exactly.
        index = RingIndex.load(reference, mmap=True)
        ref_rows = [dict(mu) for mu in RingIndex.load(reference).evaluate(
            WORKLOAD[0][1]
        )]
        if [dict(mu) for mu in index.evaluate(WORKLOAD[0][1])] != ref_rows:
            failures.append("mmap.open: post-fault reopen answered wrongly")
        else:
            print("  mmap.open  : post-fault reopen exact")
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return failures


# -- parallel-build drill (partitioned builds, killed build workers) ----------


def drill_parallel_build(rounds: int, seed: int) -> list[str]:
    """Fault and kill parallel build workers mid-partition.  The
    partitioned-build contract:

    - a faulted ``build.worker`` task (the fault fires *inside* the
      forked worker and again in the inline rescue) surfaces as typed
      :class:`BulkBuildError` with **no pack and no sidecar** behind —
      and an unfaulted retry is byte-identical to the serial reference;
    - a *killed* build worker (no fault, just ``SIGKILL`` after
      dispatch) is rescued inline: the build **succeeds**, counts at
      least one ``serial_rescues``, and the pack is still byte-identical
      to the serial reference;
    - a faulted sharded build leaves no output directory at all (the
      layout publishes by directory rename);
    - a sharded build that loses a worker still produces shard packs
      byte-identical to an undisturbed sharded build's.
    """
    from repro.graph import bulkload
    from repro.graph.bulkload import (
        BulkBuildError,
        bulk_build,
        bulk_build_sharded,
    )

    rng = random.Random(seed)
    failures: list[str] = []
    graph = random_graph(4000, n_nodes=200, n_predicates=4, seed=5)
    base = tempfile.mkdtemp(prefix="chaos-pbuild-")
    print(f"\nparallel-build drill: {rounds} fault + {rounds} kill rounds "
          f"on build.worker, then sharded fault + kill rounds")
    try:
        reference = os.path.join(base, "reference.ring")
        bulk_build(graph, reference, chunk_triples=512)
        with open(reference, "rb") as fh:
            ref_bytes = fh.read()

        # Fault rounds: the armed site makes every build task raise —
        # in the worker *and* in the rescue path — so the build must
        # fail typed and leave nothing behind.
        for round_no in range(rounds):
            out = os.path.join(base, f"fault-{round_no}.ring")
            fault = Fault("build.worker", probability=1.0,
                          error=InjectedFault)
            label = f"  pbuild {round_no:3d} fault"
            try:
                with inject_faults(fault, seed=rng.randrange(2**31)):
                    bulk_build(graph, out, chunk_triples=512, workers=2)
            except BulkBuildError:
                if os.path.exists(out) or os.path.exists(
                    out + ".config.json"
                ):
                    failures.append(f"{label}: partial pack left behind")
                    print(f"{label}: PARTIAL PACK ON DISK")
                    continue
            except Exception as exc:  # noqa: BLE001 - the whole point
                failures.append(
                    f"{label}: untyped {type(exc).__name__}: {exc}"
                )
                print(f"{label}: UNTYPED {type(exc).__name__}")
                continue
            else:
                failures.append(f"{label}: build swallowed the fault")
                print(f"{label}: FAULT SWALLOWED")
                continue
            bulk_build(graph, out, chunk_triples=512, workers=2)
            with open(out, "rb") as fh:
                retry_bytes = fh.read()
            if retry_bytes != ref_bytes:
                failures.append(f"{label}: retry pack not byte-identical")
                print(f"{label}: RETRY DIVERGED")
            else:
                print(f"{label}: typed failure, clean dir, retry "
                      f"byte-identical")

        # Kill rounds: SIGKILL one worker right after dispatch; the
        # inline rescue must finish its tasks and the pack must not
        # change by a byte.
        for round_no in range(rounds):
            out = os.path.join(base, f"kill-{round_no}.ring")
            victim = rng.randrange(2)
            label = f"  pbuild {round_no:3d} kill w{victim}"
            bulkload._POOL_HOOK = (
                lambda pool, _wid=victim: setattr(
                    pool, "_kill_after_dispatch", _wid
                )
            )
            build_stats: dict = {}
            try:
                bulk_build(graph, out, chunk_triples=512, workers=2,
                           stats=build_stats)
            except Exception as exc:  # noqa: BLE001 - the whole point
                failures.append(
                    f"{label}: killed worker failed the build "
                    f"({type(exc).__name__}: {exc})"
                )
                print(f"{label}: BUILD FAILED")
                continue
            finally:
                bulkload._POOL_HOOK = None
            with open(out, "rb") as fh:
                killed_bytes = fh.read()
            if killed_bytes != ref_bytes:
                failures.append(f"{label}: pack diverged after rescue")
                print(f"{label}: PACK DIVERGED")
            elif not build_stats.get("pool_serial_rescues"):
                failures.append(f"{label}: no serial rescue counted")
                print(f"{label}: NO RESCUE COUNTED")
            else:
                print(f"{label}: rescued inline "
                      f"({build_stats['pool_serial_rescues']} task(s)), "
                      f"pack byte-identical")

        # Sharded fault: the layout publishes by rename, so a failed
        # build must leave no output directory at all.
        shard_out = os.path.join(base, "shards-faulted")
        fault = Fault("build.worker", probability=1.0, error=InjectedFault)
        try:
            with inject_faults(fault, seed=seed):
                bulk_build_sharded(graph, shard_out, n_shards=2,
                                   chunk_triples=512, workers=2)
        except BulkBuildError:
            if os.path.exists(shard_out):
                failures.append("sharded fault: output directory left")
                print("  pbuild shard fault: PARTIAL LAYOUT ON DISK")
            else:
                print("  pbuild shard fault: typed failure, no layout")
        except Exception as exc:  # noqa: BLE001 - the whole point
            failures.append(
                f"sharded fault: untyped {type(exc).__name__}: {exc}"
            )
        else:
            failures.append("sharded fault: build swallowed the fault")

        # Sharded kill: shard packs must match an undisturbed build's.
        clean_dir = os.path.join(base, "shards-clean")
        bulk_build_sharded(graph, clean_dir, n_shards=2,
                           chunk_triples=512, workers=2)
        killed_dir = os.path.join(base, "shards-killed")
        bulkload._POOL_HOOK = lambda pool: setattr(
            pool, "_kill_after_dispatch", 0
        )
        kill_stats: dict = {}
        try:
            bulk_build_sharded(graph, killed_dir, n_shards=2,
                               chunk_triples=512, workers=2,
                               stats=kill_stats)
        except Exception as exc:  # noqa: BLE001 - the whole point
            failures.append(
                f"sharded kill: build failed ({type(exc).__name__}: {exc})"
            )
        finally:
            bulkload._POOL_HOOK = None
        if os.path.exists(killed_dir):
            diverged = []
            for sid in range(2):
                rel = os.path.join(
                    f"shard-{sid:02d}", "checkpoint-0000000001",
                    "ring-000.ring",
                )
                with open(os.path.join(clean_dir, rel), "rb") as fh:
                    want = fh.read()
                with open(os.path.join(killed_dir, rel), "rb") as fh:
                    got = fh.read()
                if want != got:
                    diverged.append(rel)
            if diverged:
                failures.append(
                    f"sharded kill: shard packs diverged: {diverged}"
                )
                print("  pbuild shard kill : PACKS DIVERGED")
            elif not kill_stats.get("pool_serial_rescues"):
                failures.append("sharded kill: no serial rescue counted")
                print("  pbuild shard kill : NO RESCUE COUNTED")
            else:
                print(f"  pbuild shard kill : rescued inline "
                      f"({kill_stats['pool_serial_rescues']} task(s)), "
                      f"shard packs byte-identical")
    finally:
        bulkload._POOL_HOOK = None
        shutil.rmtree(base, ignore_errors=True)
    return failures


# -- harness ------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dyn-rounds", type=int, default=16,
                        help="crash-at-site drill rounds")
    parser.add_argument("--truncate-points", type=int, default=24,
                        help="random WAL kill offsets to test")
    parser.add_argument("--kill-rounds", type=int, default=6,
                        help="killed-worker parallel drill rounds")
    parser.add_argument("--cache-rounds", type=int, default=9,
                        help="serving-cache drill rounds")
    parser.add_argument("--shard-rounds", type=int, default=8,
                        help="kill-a-shard serving drill rounds")
    parser.add_argument("--rerank-rounds", type=int, default=6,
                        help="plan.rerank degradation drill rounds")
    parser.add_argument("--proc-rounds", type=int, default=4,
                        help="kill -9 process-shard drill rounds")
    parser.add_argument("--ooc-rounds", type=int, default=8,
                        help="out-of-core builder crash drill rounds")
    parser.add_argument("--pbuild-rounds", type=int, default=3,
                        help="parallel-build fault/kill drill rounds")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a machine-readable per-drill summary")
    parser.add_argument("--drills", default="all",
                        help="comma-separated drill names to run "
                             "(default: all)")
    args = parser.parse_args()

    drills = [
        ("query-faults", QUERY_SITES,
         lambda: run(args.rounds, args.seed)),
        ("crash-sites", DYNAMIC_SITES,
         lambda: drill_crash_sites(args.dyn_rounds, args.seed + 1)),
        ("wal-truncation", ["wal.append"],
         lambda: drill_wal_truncation(args.truncate_points, args.seed + 2)),
        ("parallel-kill", [],
         lambda: drill_parallel_kill(args.kill_rounds, args.seed + 3)),
        ("parallel-faults", ["parallel.spawn", "parallel.slice_merge"],
         lambda: drill_parallel_faults(args.seed + 4)),
        ("cache", ["cache.lookup", "cache.store"],
         lambda: drill_cache(args.cache_rounds, args.seed + 5)),
        ("shards", ["shard.dispatch", "shard.gather", "shard.restart"],
         lambda: drill_shards(args.shard_rounds, args.seed + 6)),
        ("plan-rerank", ["plan.rerank"],
         lambda: drill_plan_rerank(args.rerank_rounds, args.seed + 7)),
        ("process-shards",
         ["proc.spawn", "proc.heartbeat", "replica.failover",
          "shard.gather"],
         lambda: drill_process_shards(args.proc_rounds, args.seed + 8)),
        ("out-of-core",
         ["build.spill", "build.merge", "mmap.open"],
         lambda: drill_outofcore(args.ooc_rounds, args.seed + 9)),
        ("parallel-build",
         ["build.worker"],
         lambda: drill_parallel_build(args.pbuild_rounds, args.seed + 10)),
    ]
    known = [name for name, _sites, _fn in drills]
    if args.drills.strip().lower() == "all":
        selected = set(known)
    else:
        selected = {d.strip() for d in args.drills.split(",") if d.strip()}
        unknown = selected - set(known)
        if unknown:
            parser.error(
                f"unknown drill(s) {sorted(unknown)}; known: {known}"
            )

    summary = {"seed": args.seed, "drills": [], "passed": True,
               "total_failures": 0}
    for name, sites, fn in drills:
        if name not in selected:
            continue
        started = time.time()
        drill_failures = fn()
        summary["drills"].append({
            "name": name,
            "sites": sites,
            "failures": drill_failures,
            "passed": not drill_failures,
            "seconds": round(time.time() - started, 3),
        })
    all_failures = [
        failure
        for entry in summary["drills"]
        for failure in entry["failures"]
    ]
    summary["total_failures"] = len(all_failures)
    summary["passed"] = not all_failures
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"\nwrote JSON summary to {args.json}")
    print(f"\nchaos drills: {len(summary['drills'])} ran, "
          f"{summary['total_failures']} failure(s)")
    for failure in all_failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    raise SystemExit(0 if summary["passed"] else 1)


if __name__ == "__main__":
    main()
